//! One scenario description, many substrates.
//!
//! A [`Scenario`] composes everything that defines an experiment run —
//! a [`Topology`], a per-link loss [`Configuration`], a [`CrashModel`],
//! a scripted [`Workload`] of broadcasts (bursts, multi-origin streams)
//! and a [`FaultScript`] of timed environment changes (link degradation,
//! loss spikes, partitions, healing, forced crashes) — into a single
//! value that runs *identically* on the deterministic simulation kernel
//! (via [`ScenarioSim`]) and on `diffuse-net`'s in-memory fabric of real
//! threads (via `diffuse_net::run_scenario_on_fabric`).
//!
//! The paper's fixed benchmark scripts (Figures 4–6) are instances of
//! this shape: pick a topology family, a uniform configuration, a
//! single-origin workload, no faults. The builder exists so that every
//! *other* combination is just as easy to write.
//!
//! # Example
//!
//! ```
//! use diffuse_core::scenario::{FaultAction, FaultScript, Scenario, Workload};
//! use diffuse_core::{Payload, ReferenceGossip};
//! use diffuse_graph::generators;
//! use diffuse_model::{Probability, ProcessId};
//! use diffuse_sim::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topology = generators::ring(8)?;
//! let neighbors = |id: ProcessId| topology.neighbors(id).collect::<Vec<_>>();
//! let scenario = Scenario::builder(topology.clone())
//!     .uniform_loss(Probability::new(0.05)?)
//!     .seed(7)
//!     .workload(Workload::new().broadcast(SimTime::ZERO, ProcessId::new(0), Payload::from("hi")))
//!     .faults(FaultScript::new().at(
//!         SimTime::new(10),
//!         FaultAction::DegradeAll { loss: Probability::new(0.2)? },
//!     ))
//!     .build();
//!
//! let report = scenario.run_sim(40, |id| ReferenceGossip::new(id, neighbors(id), 8));
//! assert!(report.all_delivered_at_least(1));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet};

use diffuse_model::{Configuration, LinkId, Probability, ProcessId, Topology};
use diffuse_sim::{CrashModel, Metrics, ShardedKernel, SimOptions, SimTime, Simulation};

use crate::adversary::{Containment, CorruptionMode, ProtocolAudit};
use crate::protocol::{Event, Payload, Protocol, ProtocolActor};

/// One scripted broadcast: at `at`, `origin` broadcasts `payload`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEvent {
    /// When the broadcast is issued.
    pub at: SimTime,
    /// The broadcasting process.
    pub origin: ProcessId,
    /// The payload to diffuse.
    pub payload: Payload,
}

/// A scripted broadcast schedule: single shots, bursts, and periodic
/// multi-origin streams, all reducible to timed [`WorkloadEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    events: Vec<WorkloadEvent>,
}

impl Workload {
    /// An empty workload (approximation-activity-only scenarios).
    pub fn new() -> Self {
        Workload::default()
    }

    /// Adds one broadcast at `at` from `origin`.
    #[must_use]
    pub fn broadcast(mut self, at: SimTime, origin: ProcessId, payload: Payload) -> Self {
        self.events.push(WorkloadEvent {
            at,
            origin,
            payload,
        });
        self
    }

    /// Adds a burst: `count` broadcasts from `origin`, all issued at
    /// `at` (payloads `"burst-0"`, `"burst-1"`, …).
    #[must_use]
    pub fn burst(mut self, at: SimTime, origin: ProcessId, count: u32) -> Self {
        for i in 0..count {
            self.events.push(WorkloadEvent {
                at,
                origin,
                payload: Payload::from(format!("burst-{i}").into_bytes()),
            });
        }
        self
    }

    /// Adds a periodic stream: `count` broadcasts from `origin`, one
    /// every `period` ticks starting at `start`.
    #[must_use]
    pub fn stream(mut self, origin: ProcessId, start: SimTime, period: u64, count: u32) -> Self {
        let period = period.max(1);
        for i in 0..count {
            self.events.push(WorkloadEvent {
                at: start + period * i as u64,
                origin,
                payload: Payload::from(format!("stream-{origin}-{i}").into_bytes()),
            });
        }
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Events sorted by time (stable: same-time events keep insertion
    /// order).
    fn sorted(&self) -> Vec<WorkloadEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at);
        events
    }
}

/// A timed environment change.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Set one link's loss probability (degradation or point repair).
    SetLoss {
        /// The affected link.
        link: LinkId,
        /// Its new loss probability.
        loss: Probability,
    },
    /// A loss spike: every link jumps to the given loss probability.
    DegradeAll {
        /// The spike's loss probability.
        loss: Probability,
    },
    /// Cut every link between `island` and the rest of the system
    /// (loss 1.0 in both directions).
    Partition {
        /// The processes on one side of the cut.
        island: Vec<ProcessId>,
    },
    /// Restore every link to the scenario's base configuration.
    Heal,
    /// Force a process down for `down_ticks` ticks. The simulation kernel
    /// executes this through `Simulation::force_down`; the fabric executes
    /// it *cooperatively* — the node's runtime drops inbound traffic and
    /// suppresses timers for the window, then fires
    /// [`Event::Recovery`](crate::Event::Recovery) — so no substrate
    /// reports it as skipped.
    Crash {
        /// The crashing process.
        process: ProcessId,
        /// Outage length in ticks.
        down_ticks: u64,
    },
    /// Turn one process into a *lying node* for a bounded window: its
    /// outgoing heartbeats are rewritten per `mode` by the process's
    /// [`Adversary`](crate::Adversary) wrapper. Substrates execute this
    /// by injecting [`Event::Corrupt`] into the process's protocol
    /// stack; a substrate that cannot reach the process (or has no
    /// corruption hook) counts the action in
    /// [`ScenarioReport::skipped_faults`].
    Corrupt {
        /// The process that starts lying.
        process: ProcessId,
        /// How its heartbeats are corrupted.
        mode: CorruptionMode,
        /// Window length in ticks; the node is honest again afterwards.
        window: u64,
    },
    /// (Re)configure the substrate's scheduled message adversary: from
    /// now on it destroys up to `d` of each sender's emissions per
    /// `window` ticks (`d == 0` switches it off). The adversary draws
    /// from its own seeded stream, so loss sampling for surviving
    /// messages is unchanged.
    MessageAdversary {
        /// Per-sender, per-window suppression budget.
        d: u32,
        /// Window length in ticks.
        window: u64,
    },
}

/// The two hooks a substrate exposes for fault injection: override a
/// link's loss and force a process down. [`FaultAction::apply`] maps
/// every fault variant onto these, so the mapping exists exactly once.
///
/// Implemented by the simulation kernel's [`Simulation`] directly;
/// `diffuse-net`'s fabric runners supply small adapters over their
/// control handles.
pub trait FaultSink {
    /// Overrides one link's loss probability for future transmissions.
    fn set_loss(&mut self, link: LinkId, loss: Probability);
    /// Forces `process` down for the next `down_ticks` ticks.
    fn force_down(&mut self, process: ProcessId, down_ticks: u64);
    /// Injects a corruption window into `process`'s protocol stack
    /// (see [`FaultAction::Corrupt`]). Returns `false` when this
    /// substrate has no corruption hook or cannot reach the process;
    /// the action is then counted as skipped.
    fn inject_corrupt(&mut self, process: ProcessId, mode: CorruptionMode, window: u64) -> bool {
        let _ = (process, mode, window);
        false
    }
    /// (Re)configures the substrate's message adversary (see
    /// [`FaultAction::MessageAdversary`]). Returns `false` when
    /// unsupported; the action is then counted as skipped.
    fn set_message_adversary(&mut self, d: u32, window: u64) -> bool {
        let _ = (d, window);
        false
    }
}

impl<A: diffuse_sim::Actor> FaultSink for Simulation<A> {
    fn set_loss(&mut self, link: LinkId, loss: Probability) {
        Simulation::set_loss(self, link, loss);
    }

    fn force_down(&mut self, process: ProcessId, down_ticks: u64) {
        Simulation::force_down(self, process, down_ticks);
    }

    fn set_message_adversary(&mut self, d: u32, window: u64) -> bool {
        Simulation::set_message_adversary(self, d, window);
        true
    }
}

impl<A: diffuse_sim::Actor> FaultSink for ShardedKernel<A> {
    fn set_loss(&mut self, link: LinkId, loss: Probability) {
        ShardedKernel::set_loss(self, link, loss);
    }

    fn force_down(&mut self, process: ProcessId, down_ticks: u64) {
        ShardedKernel::force_down(self, process, down_ticks);
    }

    fn set_message_adversary(&mut self, d: u32, window: u64) -> bool {
        ShardedKernel::set_message_adversary(self, d, window);
        true
    }
}

impl FaultAction {
    /// Applies this action against a substrate's [`FaultSink`].
    ///
    /// This is the *single* definition of what each fault variant means
    /// (which links a partition cuts, what a heal restores, how a crash
    /// translates), shared by the simulation kernel driver
    /// ([`ScenarioSim`]) and both of `diffuse-net`'s fabric runners — so
    /// the substrates cannot drift apart variant by variant. `base` is
    /// the scenario's base configuration, which [`FaultAction::Heal`]
    /// restores.
    ///
    /// Returns how many actions (zero or one) the sink could not
    /// execute — drivers accumulate this into
    /// [`ScenarioReport::skipped_faults`].
    #[must_use]
    pub fn apply(
        &self,
        topology: &Topology,
        base: &Configuration,
        sink: &mut dyn FaultSink,
    ) -> u64 {
        match self {
            FaultAction::SetLoss { link, loss } => sink.set_loss(*link, *loss),
            FaultAction::DegradeAll { loss } => {
                for link in topology.links() {
                    sink.set_loss(link, *loss);
                }
            }
            FaultAction::Partition { island } => {
                for link in partition_cut(topology, island) {
                    sink.set_loss(link, Probability::ONE);
                }
            }
            FaultAction::Heal => {
                for link in topology.links() {
                    sink.set_loss(link, base.loss(link));
                }
            }
            FaultAction::Crash {
                process,
                down_ticks,
            } => sink.force_down(*process, *down_ticks),
            FaultAction::Corrupt {
                process,
                mode,
                window,
            } => return u64::from(!sink.inject_corrupt(*process, *mode, *window)),
            FaultAction::MessageAdversary { d, window } => {
                return u64::from(!sink.set_message_adversary(*d, *window));
            }
        }
        0
    }
}

/// One [`FaultAction`] at one time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault is injected.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A timed script of environment changes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (a stable environment).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Adds `action` at time `at`.
    #[must_use]
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn sorted(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at);
        events
    }
}

/// A complete scenario: topology × configuration × crash model ×
/// workload × fault script (see the module docs).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network graph.
    pub topology: Topology,
    /// Base per-link loss probabilities.
    pub config: Configuration,
    /// How processes crash and recover (simulation only; the fabric
    /// models crashes through its fault script, not stochastically).
    pub crash_model: CrashModel,
    /// RNG seed for loss sampling and crash draws.
    pub seed: u64,
    /// Message latency in ticks.
    pub link_delay: u64,
    /// Scripted broadcasts.
    pub workload: Workload,
    /// Scripted environment changes.
    pub faults: FaultScript,
}

impl Scenario {
    /// Starts building a scenario over `topology`.
    pub fn builder(topology: Topology) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                config: Configuration::new(),
                topology,
                crash_model: CrashModel::AlwaysUp,
                seed: 0xD1FF,
                link_delay: 1,
                workload: Workload::new(),
                faults: FaultScript::new(),
            },
        }
    }

    /// The simulator options this scenario implies.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions::default()
            .with_seed(self.seed)
            .with_link_delay(self.link_delay)
            .with_crash_model(self.crash_model)
    }

    /// Instantiates the scenario on the simulation kernel, one protocol
    /// per process built by `make`.
    pub fn sim<P: Protocol>(&self, make: impl FnMut(ProcessId) -> P) -> ScenarioSim<P> {
        ScenarioSim::new(self, make)
    }

    /// Convenience: instantiate on the kernel, run `ticks`, report.
    pub fn run_sim<P: Protocol>(
        &self,
        ticks: u64,
        make: impl FnMut(ProcessId) -> P,
    ) -> ScenarioReport {
        let mut run = self.sim(make);
        run.run_ticks(ticks);
        run.report()
    }

    /// Instantiates the scenario on the sharded executor with `workers`
    /// worker threads (see [`ShardedKernel`] for the determinism
    /// contract — self-reproducible per `(seed, workers)`, identical to
    /// [`Scenario::sim`] when `workers == 1`).
    pub fn sim_sharded<P: Protocol + Send>(
        &self,
        workers: usize,
        make: impl FnMut(ProcessId) -> P,
    ) -> ShardedScenarioSim<P> {
        ShardedScenarioSim::new(self, workers, make)
    }

    /// Convenience: instantiate on the sharded executor, run `ticks`,
    /// report.
    pub fn run_sim_sharded<P: Protocol + Send>(
        &self,
        ticks: u64,
        workers: usize,
        make: impl FnMut(ProcessId) -> P,
    ) -> ScenarioReport {
        let mut run = self.sim_sharded(workers, make);
        run.run_ticks(ticks);
        run.report()
    }
}

/// Builder for [`Scenario`] (see [`Scenario::builder`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the per-link loss configuration.
    #[must_use]
    pub fn config(mut self, config: Configuration) -> Self {
        self.scenario.config = config;
        self
    }

    /// Sets a uniform loss probability on every link.
    #[must_use]
    pub fn uniform_loss(mut self, loss: Probability) -> Self {
        self.scenario.config =
            Configuration::uniform(&self.scenario.topology, Probability::ZERO, loss);
        self
    }

    /// Sets the crash model.
    #[must_use]
    pub fn crash_model(mut self, model: CrashModel) -> Self {
        self.scenario.crash_model = model;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the link delay in ticks (clamped to at least 1).
    #[must_use]
    pub fn link_delay(mut self, ticks: u64) -> Self {
        self.scenario.link_delay = ticks.max(1);
        self
    }

    /// Sets the broadcast workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.scenario.workload = workload;
        self
    }

    /// Sets the fault script.
    #[must_use]
    pub fn faults(mut self, faults: FaultScript) -> Self {
        self.scenario.faults = faults;
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

/// What a scenario run produced, substrate-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Broadcast deliveries per process.
    pub delivered: BTreeMap<ProcessId, u64>,
    /// Scripted broadcasts that failed non-retryably at issue time —
    /// zero on a healthy run. Broadcasts deferred by retryable
    /// conditions (incomplete knowledge, down origin) that never manage
    /// to issue before the run ends are counted here too.
    pub failed_broadcasts: u64,
    /// Fault events the substrate could not execute. Every
    /// [`FaultAction`] variant is executable on the kernel, the sharded
    /// executor, and the virtual-time fabric (forced crashes run
    /// cooperatively on the fabric), so this is zero on a healthy run
    /// there; substrates without a corruption or suppression hook count
    /// [`FaultAction::Corrupt`] / [`FaultAction::MessageAdversary`]
    /// events here instead of silently dropping them.
    pub skipped_faults: u64,
    /// Adversary containment metrics (all-zero when the scenario
    /// scripted no lying nodes and no message adversary).
    pub containment: Containment,
    /// Wire-level metrics. Kernel and virtual-fabric runs fill these
    /// exactly (bit-comparable across those substrates); wall-clock
    /// fabric runs fill best-effort transport-level counters that are
    /// **not** kernel-comparable (different RNG stream, real
    /// scheduling, delivered-at-enqueue semantics).
    pub metrics: Option<Metrics>,
}

impl ScenarioReport {
    /// `true` iff every process delivered at least `n` broadcasts.
    pub fn all_delivered_at_least(&self, n: u64) -> bool {
        !self.delivered.is_empty() && self.delivered.values().all(|&d| d >= n)
    }

    /// The minimum delivery count over all processes.
    pub fn min_delivered(&self) -> u64 {
        self.delivered.values().copied().min().unwrap_or(0)
    }
}

/// Time-ordered application state for a scenario's two scripts.
///
/// Both substrates drive their runs through this one cursor type so the
/// *semantics* of script application — fault-before-workload ordering at
/// equal times, deferred-broadcast retries one tick later, pending
/// broadcasts counting as failed at report time — are defined exactly
/// once. [`ScenarioSim`] uses it against the simulation kernel;
/// `diffuse_net`'s fabric runners use it against real threads.
#[derive(Debug, Clone)]
pub struct ScriptSchedule {
    workload: Vec<WorkloadEvent>,
    workload_cursor: usize,
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    /// Broadcasts whose issue was deferred (incomplete knowledge, origin
    /// down): retried once per tick, like the net runtime's pending
    /// queue, so both substrates share the retry semantics.
    deferred: Vec<(SimTime, WorkloadEvent)>,
    failed: u64,
}

impl ScriptSchedule {
    /// Builds the schedule from a scenario's workload and fault scripts
    /// (each sorted by time, stable within equal times).
    pub fn new(scenario: &Scenario) -> Self {
        ScriptSchedule {
            workload: scenario.workload.sorted(),
            workload_cursor: 0,
            faults: scenario.faults.sorted(),
            fault_cursor: 0,
            deferred: Vec::new(),
            failed: 0,
        }
    }

    /// The earliest unapplied script event or deferred retry.
    pub fn next_time(&self) -> Option<SimTime> {
        let workload = self.workload.get(self.workload_cursor).map(|e| e.at);
        let fault = self.faults.get(self.fault_cursor).map(|e| e.at);
        let retry = self.deferred.iter().map(|&(at, _)| at).min();
        [workload, fault, retry].into_iter().flatten().min()
    }

    /// Takes every fault action due at or before `now`, in script order.
    /// Faults are taken before [`ScriptSchedule::due_broadcasts`] at equal
    /// times, so a broadcast scheduled at the moment of a heal sees the
    /// healed links on every substrate.
    pub fn due_faults(&mut self, now: SimTime) -> Vec<FaultAction> {
        let mut due = Vec::new();
        while self
            .faults
            .get(self.fault_cursor)
            .is_some_and(|e| e.at <= now)
        {
            due.push(self.faults[self.fault_cursor].action.clone());
            self.fault_cursor += 1;
        }
        due
    }

    /// Takes every broadcast due at or before `now`: deferred retries
    /// first (in deferral order, so a broadcast never overtakes an
    /// earlier one from the same origin), then newly-due workload events
    /// in script order.
    pub fn due_broadcasts(&mut self, now: SimTime) -> Vec<WorkloadEvent> {
        let mut due = Vec::new();
        self.deferred.retain(|(at, event)| {
            if *at <= now {
                due.push(event.clone());
                false
            } else {
                true
            }
        });
        while self
            .workload
            .get(self.workload_cursor)
            .is_some_and(|e| e.at <= now)
        {
            due.push(self.workload[self.workload_cursor].clone());
            self.workload_cursor += 1;
        }
        due
    }

    /// Re-queues a broadcast whose issue was deferred by a retryable
    /// condition, to be retried at `at`.
    pub fn defer(&mut self, at: SimTime, event: WorkloadEvent) {
        self.deferred.push((at, event));
    }

    /// Counts one broadcast that failed non-retryably at issue time.
    pub fn record_failed(&mut self) {
        self.failed += 1;
    }

    /// Broadcasts that failed non-retryably so far (excluding still
    /// deferred ones — see [`ScriptSchedule::pending`]).
    pub fn failed_broadcasts(&self) -> u64 {
        self.failed
    }

    /// Broadcasts currently deferred, awaiting their next retry. A run
    /// that ends while broadcasts are pending reports them as failed —
    /// they never issued.
    pub fn pending(&self) -> u64 {
        self.deferred.len() as u64
    }
}

/// A scenario instantiated on the simulation kernel: owns the
/// [`Simulation`] plus a [`ScriptSchedule`] over the workload and fault
/// scripts, and applies script events at exactly their scheduled times
/// while the clock advances (fast-forwarding through idle stretches
/// whenever the kernel allows it).
pub struct ScenarioSim<P: Protocol> {
    sim: Simulation<ProtocolActor<P>>,
    topology: Topology,
    base_config: Configuration,
    script: ScriptSchedule,
    skipped_faults: u64,
    /// Processes a [`FaultAction::Corrupt`] ever targeted — the "liar
    /// set" that containment metrics are assembled against.
    corrupt: BTreeSet<ProcessId>,
}

impl<P: Protocol> std::fmt::Debug for ScenarioSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSim")
            .field("now", &self.sim.now())
            .field("script", &self.script)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> ScenarioSim<P> {
    /// Instantiates `scenario` on the kernel, one protocol per process.
    pub fn new(scenario: &Scenario, mut make: impl FnMut(ProcessId) -> P) -> Self {
        let sim = Simulation::new(
            scenario.topology.clone(),
            scenario.config.clone(),
            |id| ProtocolActor::new(make(id)),
            scenario.sim_options(),
        );
        ScenarioSim {
            sim,
            topology: scenario.topology.clone(),
            base_config: scenario.config.clone(),
            script: ScriptSchedule::new(scenario),
            skipped_faults: 0,
            corrupt: BTreeSet::new(),
        }
    }

    /// The underlying simulation (metrics, node access, time).
    pub fn sim(&self) -> &Simulation<ProtocolActor<P>> {
        &self.sim
    }

    /// Mutable access to the underlying simulation (extra fault
    /// injection, manual commands).
    pub fn sim_mut(&mut self) -> &mut Simulation<ProtocolActor<P>> {
        &mut self.sim
    }

    /// Scripted broadcasts that failed non-retryably at issue time.
    pub fn failed_broadcasts(&self) -> u64 {
        self.script.failed_broadcasts()
    }

    /// Scripted broadcasts currently deferred (incomplete knowledge or a
    /// down origin), awaiting their next per-tick retry.
    pub fn pending_broadcasts(&self) -> u64 {
        self.script.pending()
    }

    /// The earliest unapplied script event or deferred retry strictly
    /// after `now`.
    fn next_script_time(&self) -> Option<SimTime> {
        self.script.next_time()
    }

    /// Applies every script event due at or before the current time —
    /// faults before broadcasts at equal times, each script in time
    /// order — and retries deferred broadcasts.
    fn apply_due_events(&mut self) {
        let now = self.sim.now();
        for action in self.script.due_faults(now) {
            self.apply_fault(&action);
        }
        for event in self.script.due_broadcasts(now) {
            self.issue_broadcast(event);
        }
    }

    /// Issues one scripted broadcast. Retryable outcomes — incomplete
    /// knowledge, a currently-down origin — are deferred to the next
    /// tick (mirroring the net runtime, which retries its pending
    /// broadcasts until they succeed); anything else counts as failed.
    fn issue_broadcast(&mut self, event: WorkloadEvent) {
        let now = self.sim.now();
        let mut outcome = Ok(());
        let issued = self.sim.command(event.origin, |actor, ctx| {
            outcome = actor.broadcast_now(ctx, event.payload.clone()).map(|_| ());
        });
        let retry = !issued || matches!(outcome, Err(crate::CoreError::KnowledgeIncomplete));
        if retry {
            self.script.defer(now + 1, event);
        } else if outcome.is_err() {
            self.script.record_failed();
        }
    }

    fn apply_fault(&mut self, action: &FaultAction) {
        if let FaultAction::Corrupt { process, .. } = action {
            self.corrupt.insert(*process);
        }
        let mut sink = KernelScriptSink { sim: &mut self.sim };
        self.skipped_faults += action.apply(&self.topology, &self.base_config, &mut sink);
    }

    /// Containment metrics assembled from per-node protocol audits, the
    /// scripted liar set, and the kernel's suppression counter.
    pub fn containment(&self) -> Containment {
        let audits: BTreeMap<ProcessId, ProtocolAudit> = self
            .sim
            .nodes()
            .map(|(id, actor)| (id, actor.protocol().audit()))
            .collect();
        Containment::assemble(
            &self.corrupt,
            &audits,
            self.sim.metrics().suppressed_by_adversary(),
        )
    }

    /// Advances `n` ticks, applying script events at their scheduled
    /// times. Idle stretches between events fast-forward when the kernel
    /// allows it.
    ///
    /// An event scheduled exactly at the run's final tick is *not*
    /// applied by this run — its sends could never be delivered inside
    /// the horizon — but fires at the start of a subsequent run. The
    /// fabric runner draws the same boundary.
    pub fn run_ticks(&mut self, n: u64) {
        let end = self.sim.now() + n;
        loop {
            let now = self.sim.now();
            if now >= end {
                break;
            }
            self.apply_due_events();
            let target = self.next_script_time().filter(|&t| t <= end).unwrap_or(end);
            self.sim.run_ticks(target - self.sim.now());
        }
    }

    /// Runs until `predicate` holds (checked at multiples of
    /// `check_every` ticks), applying script events on the way; gives up
    /// after `max_ticks`.
    pub fn run_until_every(
        &mut self,
        mut predicate: impl FnMut(&Simulation<ProtocolActor<P>>) -> bool,
        check_every: u64,
        max_ticks: u64,
    ) -> Option<SimTime> {
        let end = self.sim.now() + max_ticks;
        loop {
            let now = self.sim.now();
            if now >= end {
                return None;
            }
            self.apply_due_events();
            let target = self.next_script_time().filter(|&t| t <= end).unwrap_or(end);
            if let Some(hit) =
                self.sim
                    .run_until_every(&mut predicate, check_every, target - self.sim.now())
            {
                return Some(hit);
            }
        }
    }

    /// The run's outcome so far. Broadcasts still deferred when the
    /// report is taken count as failed — they never issued.
    pub fn report(&self) -> ScenarioReport {
        ScenarioReport {
            delivered: self
                .sim
                .nodes()
                .map(|(id, actor)| (id, actor.protocol().delivered().len() as u64))
                .collect(),
            failed_broadcasts: self.script.failed_broadcasts() + self.script.pending(),
            skipped_faults: self.skipped_faults,
            containment: self.containment(),
            metrics: Some(self.sim.metrics().clone()),
        }
    }
}

/// The kernel driver's fault sink: loss and crash hooks delegate to the
/// [`Simulation`], and — because the driver knows its actors are
/// [`ProtocolActor`]s — corruption windows are injected as
/// [`Event::Corrupt`] through a live context, with the resulting sends
/// flushed like any handler's.
struct KernelScriptSink<'a, P: Protocol> {
    sim: &'a mut Simulation<ProtocolActor<P>>,
}

impl<P: Protocol> FaultSink for KernelScriptSink<'_, P> {
    fn set_loss(&mut self, link: LinkId, loss: Probability) {
        self.sim.set_loss(link, loss);
    }

    fn force_down(&mut self, process: ProcessId, down_ticks: u64) {
        self.sim.force_down(process, down_ticks);
    }

    fn inject_corrupt(&mut self, process: ProcessId, mode: CorruptionMode, window: u64) -> bool {
        self.sim.command(process, |actor, ctx| {
            actor.inject_event(ctx, Event::Corrupt { mode, window });
        })
    }

    fn set_message_adversary(&mut self, d: u32, window: u64) -> bool {
        self.sim.set_message_adversary(d, window);
        true
    }
}

/// [`KernelScriptSink`]'s twin for the sharded executor (commands run on
/// the coordinator between segments, so the injection lands at a tick
/// barrier on every shard).
struct ShardedScriptSink<'a, P: Protocol + Send> {
    sim: &'a mut ShardedKernel<ProtocolActor<P>>,
}

impl<P: Protocol + Send> FaultSink for ShardedScriptSink<'_, P> {
    fn set_loss(&mut self, link: LinkId, loss: Probability) {
        self.sim.set_loss(link, loss);
    }

    fn force_down(&mut self, process: ProcessId, down_ticks: u64) {
        self.sim.force_down(process, down_ticks);
    }

    fn inject_corrupt(&mut self, process: ProcessId, mode: CorruptionMode, window: u64) -> bool {
        self.sim.command(process, |actor, ctx| {
            actor.inject_event(ctx, Event::Corrupt { mode, window });
        })
    }

    fn set_message_adversary(&mut self, d: u32, window: u64) -> bool {
        self.sim.set_message_adversary(d, window);
        true
    }
}

/// A scenario instantiated on the sharded executor: the same
/// [`ScriptSchedule`] semantics as [`ScenarioSim`], driving a
/// [`ShardedKernel`] instead of the spec kernel.
///
/// Script events — faults and broadcasts — are applied by the
/// coordinator *between* run segments, while no worker thread is live;
/// every shard therefore observes each fault at the same tick barrier.
/// Deferred-broadcast retries, fault-before-workload ordering at equal
/// times, and pending-counts-as-failed reporting all reuse
/// [`ScriptSchedule`] unchanged, so the sharded driver cannot drift
/// from the kernel driver's script semantics.
pub struct ShardedScenarioSim<P: Protocol + Send> {
    sim: ShardedKernel<ProtocolActor<P>>,
    topology: Topology,
    base_config: Configuration,
    script: ScriptSchedule,
    skipped_faults: u64,
    corrupt: BTreeSet<ProcessId>,
}

impl<P: Protocol + Send> std::fmt::Debug for ShardedScenarioSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScenarioSim")
            .field("now", &self.sim.now())
            .field("workers", &self.sim.workers())
            .field("script", &self.script)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol + Send> ShardedScenarioSim<P> {
    /// Instantiates `scenario` on the sharded executor with `workers`
    /// worker threads (clamped to `1..=process count`).
    pub fn new(scenario: &Scenario, workers: usize, mut make: impl FnMut(ProcessId) -> P) -> Self {
        let sim = ShardedKernel::new(
            scenario.topology.clone(),
            scenario.config.clone(),
            |id| ProtocolActor::new(make(id)),
            scenario.sim_options(),
            workers,
        );
        ShardedScenarioSim {
            sim,
            topology: scenario.topology.clone(),
            base_config: scenario.config.clone(),
            script: ScriptSchedule::new(scenario),
            skipped_faults: 0,
            corrupt: BTreeSet::new(),
        }
    }

    /// The underlying sharded executor (metrics, node access, time).
    pub fn sim(&self) -> &ShardedKernel<ProtocolActor<P>> {
        &self.sim
    }

    /// Mutable access to the underlying executor (extra fault
    /// injection, manual commands between segments).
    pub fn sim_mut(&mut self) -> &mut ShardedKernel<ProtocolActor<P>> {
        &mut self.sim
    }

    /// Scripted broadcasts that failed non-retryably at issue time.
    pub fn failed_broadcasts(&self) -> u64 {
        self.script.failed_broadcasts()
    }

    /// Scripted broadcasts currently deferred, awaiting their next
    /// per-tick retry.
    pub fn pending_broadcasts(&self) -> u64 {
        self.script.pending()
    }

    /// Applies every script event due at or before the current time —
    /// faults before broadcasts at equal times (the same boundary as
    /// [`ScenarioSim`]). Runs on the coordinator between segments.
    fn apply_due_events(&mut self) {
        let now = self.sim.now();
        for action in self.script.due_faults(now) {
            if let FaultAction::Corrupt { process, .. } = &action {
                self.corrupt.insert(*process);
            }
            let mut sink = ShardedScriptSink { sim: &mut self.sim };
            self.skipped_faults += action.apply(&self.topology, &self.base_config, &mut sink);
        }
        for event in self.script.due_broadcasts(now) {
            self.issue_broadcast(event);
        }
    }

    /// Containment metrics assembled from per-node protocol audits, the
    /// scripted liar set, and the shards' suppression counters.
    pub fn containment(&self) -> Containment {
        let audits: BTreeMap<ProcessId, ProtocolAudit> = self
            .sim
            .nodes()
            .map(|(id, actor)| (id, actor.protocol().audit()))
            .collect();
        Containment::assemble(
            &self.corrupt,
            &audits,
            self.sim.metrics().suppressed_by_adversary(),
        )
    }

    /// Issues one scripted broadcast; retryable outcomes defer to the
    /// next tick exactly as in [`ScenarioSim::run_ticks`]'s driver.
    fn issue_broadcast(&mut self, event: WorkloadEvent) {
        let now = self.sim.now();
        let mut outcome = Ok(());
        let issued = self.sim.command(event.origin, |actor, ctx| {
            outcome = actor.broadcast_now(ctx, event.payload.clone()).map(|_| ());
        });
        let retry = !issued || matches!(outcome, Err(crate::CoreError::KnowledgeIncomplete));
        if retry {
            self.script.defer(now + 1, event);
        } else if outcome.is_err() {
            self.script.record_failed();
        }
    }

    /// Advances `n` ticks, applying script events at their scheduled
    /// times (at tick barriers — no worker thread is live while a
    /// script event applies). Idle stretches between events
    /// fast-forward when every shard agrees nothing is due.
    pub fn run_ticks(&mut self, n: u64) {
        let end = self.sim.now() + n;
        loop {
            let now = self.sim.now();
            if now >= end {
                break;
            }
            self.apply_due_events();
            let target = self.script.next_time().filter(|&t| t <= end).unwrap_or(end);
            self.sim.run_ticks(target - self.sim.now());
        }
    }

    /// The run's outcome so far, field-compatible with
    /// [`ScenarioSim::report`]: per-process deliveries in id order,
    /// pending broadcasts counted as failed, shard metrics merged in
    /// shard order.
    pub fn report(&self) -> ScenarioReport {
        ScenarioReport {
            delivered: self
                .sim
                .nodes()
                .map(|(id, actor)| (id, actor.protocol().delivered().len() as u64))
                .collect(),
            failed_broadcasts: self.script.failed_broadcasts() + self.script.pending(),
            skipped_faults: self.skipped_faults,
            containment: self.containment(),
            metrics: Some(self.sim.metrics()),
        }
    }
}

/// The links crossing the boundary between `island` and the rest.
pub fn partition_cut(topology: &Topology, island: &[ProcessId]) -> Vec<LinkId> {
    topology
        .links()
        .filter(|link| {
            let (a, b) = link.endpoints();
            island.contains(&a) != island.contains(&b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkKnowledge, OptimalBroadcast, ReferenceGossip};
    use diffuse_graph::generators;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn workload_builders_expand_to_events() {
        let w = Workload::new()
            .broadcast(SimTime::new(5), p(0), Payload::from("x"))
            .burst(SimTime::new(7), p(1), 3)
            .stream(p(2), SimTime::new(10), 4, 2);
        assert_eq!(w.events().len(), 6);
        let sorted = w.sorted();
        assert_eq!(sorted[0].at, SimTime::new(5));
        assert_eq!(sorted.last().unwrap().at, SimTime::new(14));
    }

    #[test]
    fn partition_cut_finds_crossing_links() {
        let ring = generators::ring(6).unwrap();
        let cut = partition_cut(&ring, &[p(0), p(1), p(2)]);
        // Exactly two links cross a contiguous arc cut of a ring.
        assert_eq!(cut.len(), 2);
    }

    #[test]
    fn scenario_runs_a_scripted_broadcast_on_the_kernel() {
        let topology = generators::ring(6).unwrap();
        let config = Configuration::new();
        let knowledge = NetworkKnowledge::exact(topology.clone(), config.clone());
        let scenario = Scenario::builder(topology)
            .config(config)
            .seed(3)
            .workload(Workload::new().broadcast(SimTime::ZERO, p(0), Payload::from("go")))
            .build();
        let report = scenario.run_sim(20, |id| OptimalBroadcast::new(id, knowledge.clone(), 0.999));
        assert!(report.all_delivered_at_least(1), "{report:?}");
        assert_eq!(report.failed_broadcasts, 0);
        assert!(report.metrics.as_ref().unwrap().sent_total() >= 5);
    }

    #[test]
    fn fault_script_cuts_and_heals_mid_run() {
        // Gossip on a line 0-1-2; the only path is cut when the first
        // broadcast is issued and healed before the second.
        let mut topology = Topology::new();
        topology.add_link(p(0), p(1)).unwrap();
        topology.add_link(p(1), p(2)).unwrap();
        let neighbors = |id: ProcessId| topology.neighbors(id).collect::<Vec<_>>();
        let scenario = Scenario::builder(topology.clone())
            .seed(5)
            .workload(
                Workload::new()
                    .broadcast(SimTime::ZERO, p(0), Payload::from("cut"))
                    .broadcast(SimTime::new(40), p(0), Payload::from("healed")),
            )
            .faults(
                FaultScript::new()
                    .at(SimTime::ZERO, FaultAction::Partition { island: vec![p(0)] })
                    .at(SimTime::new(30), FaultAction::Heal),
            )
            .build();
        let report = scenario.run_sim(80, |id| ReferenceGossip::new(id, neighbors(id), 6));
        // p0 delivered both of its own broadcasts; the others only saw
        // the post-heal one.
        assert_eq!(report.delivered[&p(0)], 2);
        assert_eq!(report.delivered[&p(1)], 1);
        assert_eq!(report.delivered[&p(2)], 1);
    }

    #[test]
    fn scripted_crash_is_executed_by_the_kernel() {
        let topology = generators::ring(4).unwrap();
        let config = Configuration::new();
        let knowledge = NetworkKnowledge::exact(topology.clone(), config.clone());
        let scenario = Scenario::builder(topology)
            .config(config)
            .workload(Workload::new().broadcast(SimTime::new(5), p(0), Payload::from("x")))
            .faults(FaultScript::new().at(
                SimTime::new(1),
                FaultAction::Crash {
                    process: p(2),
                    down_ticks: 3,
                },
            ))
            .build();
        let mut run = scenario.sim(|id| OptimalBroadcast::new(id, knowledge.clone(), 0.999));
        run.run_ticks(3);
        assert!(!run.sim().is_up(p(2)));
        run.run_ticks(30);
        assert!(run.sim().is_up(p(2)));
        assert!(run.report().all_delivered_at_least(1));
    }

    #[test]
    fn adversarial_faults_execute_with_zero_skips() {
        // One lying node plus a bounded message adversary on the
        // kernel: both actions execute (nothing skipped), containment
        // counters move, and no corrupted entry lands at distortion 0.
        let topology = generators::complete(4).unwrap();
        let all: Vec<ProcessId> = topology.processes().collect();
        let neighbors = |id: ProcessId| topology.neighbors(id).collect::<Vec<_>>();
        let scenario = Scenario::builder(topology.clone())
            .seed(11)
            .workload(Workload::new().broadcast(SimTime::new(60), p(1), Payload::from("x")))
            .faults(
                FaultScript::new()
                    .at(
                        SimTime::new(20),
                        FaultAction::Corrupt {
                            process: p(0),
                            mode: CorruptionMode::UnderstateDistortion,
                            window: 40,
                        },
                    )
                    .at(
                        SimTime::new(20),
                        FaultAction::MessageAdversary { d: 1, window: 10 },
                    )
                    // Switched off before the broadcast, so the data
                    // copies themselves run unsuppressed.
                    .at(
                        SimTime::new(50),
                        FaultAction::MessageAdversary { d: 0, window: 1 },
                    ),
            )
            .build();
        let report = scenario.run_sim(200, |id| {
            crate::Adversary::new(
                crate::AdaptiveBroadcast::new(
                    id,
                    all.clone(),
                    neighbors(id),
                    crate::AdaptiveParams::default(),
                ),
                11,
            )
        });
        assert_eq!(report.skipped_faults, 0);
        let c = report.containment;
        assert!(c.corrupt_emissions > 0, "{c:?}");
        assert!(c.suppressed_emissions > 0, "{c:?}");
        assert_eq!(c.bound_violations, 0, "{c:?}");
        assert!(!c.is_clean());
        assert!(report.all_delivered_at_least(1), "{report:?}");

        // The sharded executor at one worker replays the kernel's run
        // bit for bit — adversary streams included.
        let sharded = scenario.run_sim_sharded(200, 1, |id| {
            crate::Adversary::new(
                crate::AdaptiveBroadcast::new(
                    id,
                    all.clone(),
                    neighbors(id),
                    crate::AdaptiveParams::default(),
                ),
                11,
            )
        });
        assert_eq!(report, sharded);
    }

    #[test]
    fn premature_broadcasts_are_deferred_then_issued() {
        // An adaptive node cannot broadcast at tick 0 (incomplete
        // knowledge). Like the net runtime, the kernel driver defers and
        // retries each tick, so the broadcast issues once the topology
        // completes — and a run too short for that reports the pending
        // broadcast as failed.
        let topology = generators::ring(4).unwrap();
        let all: Vec<ProcessId> = topology.processes().collect();
        let neighbors = |id: ProcessId| topology.neighbors(id).collect::<Vec<_>>();
        let scenario = Scenario::builder(topology.clone())
            .workload(Workload::new().broadcast(SimTime::ZERO, p(0), Payload::from("too early")))
            .build();
        let mut run = scenario.sim(|id| {
            crate::AdaptiveBroadcast::new(
                id,
                all.clone(),
                neighbors(id),
                crate::AdaptiveParams::default(),
            )
        });
        run.run_ticks(1);
        assert_eq!(run.pending_broadcasts(), 1, "still deferred");
        assert_eq!(
            run.report().failed_broadcasts,
            1,
            "pending counts as failed"
        );
        run.run_ticks(40);
        let report = run.report();
        assert_eq!(run.pending_broadcasts(), 0);
        assert_eq!(report.failed_broadcasts, 0);
        assert!(report.all_delivered_at_least(1), "{report:?}");
    }
}

//! The optimal probabilistic reliable broadcast (Algorithm 1).

use std::collections::BTreeSet;
use std::sync::Arc;

use diffuse_model::ProcessId;
use diffuse_sim::SimTime;

use crate::protocol::{Actions, BroadcastId, DataMessage, Event, Message, Payload, Protocol};
use crate::tree::SharedWireTree;
use crate::{optimize, CoreError, NetworkKnowledge, ReliabilityTree};

/// Forwards a data message to the executing process's children in the
/// wire tree, sending the per-link counts computed by `optimize`
/// (Algorithm 1's `propagate`). Shared by the optimal and adaptive
/// protocols.
///
/// # Errors
///
/// * [`CoreError::MalformedWireTree`] if the wire tree is inconsistent;
/// * [`CoreError::NotInTree`] if `self_id` does not appear in the tree;
/// * any [`optimize`] error.
pub(crate) fn propagate(
    self_id: ProcessId,
    id: BroadcastId,
    payload: &Payload,
    wire: &SharedWireTree,
    k: f64,
    actions: &mut Actions,
) -> Result<(), CoreError> {
    let tree = ReliabilityTree::from_wire(wire)?;
    if !tree.tree().contains(self_id) {
        return Err(CoreError::NotInTree(self_id));
    }
    let plan = optimize(&tree, k)?;
    for &child in tree.children(self_id) {
        let j = tree.index_of(child).expect("children have link indices");
        for _ in 0..plan.count(j) {
            actions.send(
                child,
                Message::Data(DataMessage {
                    id,
                    payload: payload.clone(),
                    tree: Arc::clone(wire),
                }),
            );
        }
    }
    Ok(())
}

/// The paper's optimal algorithm (Algorithm 1): reliable broadcast with
/// *exact* knowledge of the topology and failure configuration.
///
/// On `broadcast`, the sender builds the maximum reliability tree rooted
/// at itself, computes the optimal per-link message counts with
/// `optimize()` (Algorithm 2), ships the tree with every copy, and
/// delivers locally. On first receipt of a data message, a process
/// delivers it and propagates it to its own children *in the sender's
/// tree*, re-deriving the same counts deterministically.
///
/// This protocol is mostly of theoretical interest (perfect knowledge is
/// unobtainable); it is the yardstick the adaptive algorithm converges to
/// (Definition 2) and the "optimal" curve in the paper's figures.
#[derive(Debug)]
pub struct OptimalBroadcast {
    id: ProcessId,
    knowledge: NetworkKnowledge,
    target: f64,
    next_seq: u64,
    seen: BTreeSet<BroadcastId>,
    delivered: Vec<(BroadcastId, Payload)>,
    /// Cached wire tree rooted at this process (knowledge never changes).
    cached_tree: Option<SharedWireTree>,
    errors: u64,
}

impl OptimalBroadcast {
    /// Creates an optimal broadcaster with exact `knowledge` and target
    /// reliability `k` (the paper's `K`, e.g. `0.9999`).
    pub fn new(id: ProcessId, knowledge: NetworkKnowledge, k: f64) -> Self {
        OptimalBroadcast {
            id,
            knowledge,
            target: k,
            next_seq: 0,
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            cached_tree: None,
            errors: 0,
        }
    }

    /// The target reliability `K`.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The exact knowledge this process operates on.
    pub fn knowledge(&self) -> &NetworkKnowledge {
        &self.knowledge
    }

    /// Number of malformed or un-forwardable messages ignored so far.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Returns `true` iff this broadcast has been seen (delivered).
    pub fn has_seen(&self, id: BroadcastId) -> bool {
        self.seen.contains(&id)
    }

    fn tree_for_self(&mut self) -> Result<SharedWireTree, CoreError> {
        if let Some(tree) = &self.cached_tree {
            return Ok(Arc::clone(tree));
        }
        let tree = self.knowledge.reliability_tree(self.id)?;
        let wire: SharedWireTree = Arc::new(tree.to_wire());
        self.cached_tree = Some(Arc::clone(&wire));
        Ok(wire)
    }
}

impl Protocol for OptimalBroadcast {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, now: SimTime, event: Event, actions: &mut Actions) {
        match event {
            Event::Message { message, .. } => {
                let Message::Data(data) = message else {
                    return; // optimal nodes exchange only data messages
                };
                // "when receive (m, mrt_j) for the first time" —
                // duplicates are counted on the wire but ignored here.
                if !self.seen.insert(data.id) {
                    return;
                }
                self.delivered.push((data.id, data.payload.clone()));
                actions.deliver(data.id, data.payload.clone());
                if let Err(_e) = propagate(
                    self.id,
                    data.id,
                    &data.payload,
                    &data.tree,
                    self.target,
                    actions,
                ) {
                    self.errors += 1;
                }
            }
            // Perfect knowledge needs no timers and survives crashes
            // statelessly (stable storage holds `seen`). Corruption
            // windows are consumed by the Adversary wrapper.
            Event::Timer(_) | Event::Recovery { .. } | Event::Corrupt { .. } => {}
            Event::Broadcast(payload) => {
                if self.broadcast(now, payload, actions).is_err() {
                    self.errors += 1;
                }
            }
        }
    }

    fn broadcast(
        &mut self,
        _now: SimTime,
        payload: Payload,
        actions: &mut Actions,
    ) -> Result<BroadcastId, CoreError> {
        let wire = self.tree_for_self()?;
        let id = BroadcastId {
            origin: self.id,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.seen.insert(id);
        propagate(self.id, id, &payload, &wire, self.target, actions)?;
        self.delivered.push((id, payload.clone()));
        actions.deliver(id, payload);
        Ok(id)
    }

    fn delivered(&self) -> &[(BroadcastId, Payload)] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_model::{Configuration, Probability, Topology};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Line 0-1-2 with 10% loss per link.
    fn line_knowledge() -> NetworkKnowledge {
        let mut g = Topology::new();
        g.add_link(p(0), p(1)).unwrap();
        g.add_link(p(1), p(2)).unwrap();
        let c = Configuration::uniform(&g, Probability::ZERO, Probability::new(0.1).unwrap());
        NetworkKnowledge::exact(g, c)
    }

    #[test]
    fn broadcast_sends_planned_copies_and_delivers_locally() {
        let mut node = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut actions = Actions::new();
        let id = node
            .broadcast(SimTime::ZERO, Payload::from("m"), &mut actions)
            .unwrap();

        // λ = 0.1 on each of the two links: reaching both processes with
        // probability 0.999 needs (1 - λ^m)² ≥ 0.999 → 4 copies per link.
        // The root only sends to its child p1.
        assert_eq!(actions.sends().len(), 4);
        assert!(actions.sends().iter().all(|(to, _)| *to == p(1)));
        assert_eq!(actions.deliveries().len(), 1);
        assert_eq!(node.delivered().len(), 1);
        assert!(node.has_seen(id));
        assert_eq!(id.origin, p(0));
    }

    #[test]
    fn receiver_delivers_once_and_forwards_downstream() {
        let mut sender = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut relay = OptimalBroadcast::new(p(1), line_knowledge(), 0.999);

        let mut actions = Actions::new();
        sender
            .broadcast(SimTime::ZERO, Payload::from("m"), &mut actions)
            .unwrap();
        let sends = actions.take_sends();
        let (_, first_copy) = sends[0].clone();

        // First copy: deliver + forward 4 copies to p2 (same plan as the
        // sender derived — see broadcast_sends_planned_copies).
        let mut relay_actions = Actions::new();
        relay.handle_message(
            SimTime::new(1),
            p(0),
            first_copy.clone(),
            &mut relay_actions,
        );
        assert_eq!(relay.delivered().len(), 1);
        assert_eq!(relay_actions.sends().len(), 4);
        assert!(relay_actions.sends().iter().all(|(to, _)| *to == p(2)));

        // Duplicate: ignored entirely.
        let mut dup_actions = Actions::new();
        relay.handle_message(SimTime::new(2), p(0), first_copy, &mut dup_actions);
        assert!(dup_actions.is_empty());
        assert_eq!(relay.delivered().len(), 1);
    }

    #[test]
    fn leaf_forwards_nothing() {
        let mut sender = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut leaf = OptimalBroadcast::new(p(2), line_knowledge(), 0.999);
        let mut actions = Actions::new();
        sender
            .broadcast(SimTime::ZERO, Payload::from("m"), &mut actions)
            .unwrap();
        let (_, copy) = actions.take_sends()[0].clone();
        let mut leaf_actions = Actions::new();
        leaf.handle_message(SimTime::new(1), p(1), copy, &mut leaf_actions);
        assert!(leaf_actions.sends().is_empty());
        assert_eq!(leaf.delivered().len(), 1);
    }

    #[test]
    fn broadcast_event_sends_the_planned_copies() {
        let mut node = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut actions = Actions::new();
        node.on_event(
            SimTime::ZERO,
            Event::Broadcast(Payload::from("m")),
            &mut actions,
        );
        // Same plan as the direct broadcast() call: 4 copies to p1.
        assert_eq!(actions.sends().len(), 4);
        assert_eq!(node.delivered().len(), 1);
        assert_eq!(node.error_count(), 0);
    }

    #[test]
    fn non_data_messages_are_ignored() {
        let mut node = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut actions = Actions::new();
        node.handle_message(
            SimTime::ZERO,
            p(1),
            Message::Ack {
                id: BroadcastId {
                    origin: p(1),
                    seq: 0,
                },
            },
            &mut actions,
        );
        assert!(actions.is_empty());
        assert_eq!(node.error_count(), 0);
    }

    #[test]
    fn broadcast_fails_on_disconnected_knowledge() {
        let mut g = Topology::new();
        g.add_link(p(0), p(1)).unwrap();
        g.add_process(p(2));
        let knowledge = NetworkKnowledge::exact(g, Configuration::new());
        let mut node = OptimalBroadcast::new(p(0), knowledge, 0.99);
        let mut actions = Actions::new();
        assert!(matches!(
            node.broadcast(SimTime::ZERO, Payload::empty(), &mut actions),
            Err(CoreError::KnowledgeIncomplete)
        ));
    }

    #[test]
    fn tree_cache_is_reused_across_broadcasts() {
        let mut node = OptimalBroadcast::new(p(0), line_knowledge(), 0.999);
        let mut actions = Actions::new();
        node.broadcast(SimTime::ZERO, Payload::from("a"), &mut actions)
            .unwrap();
        node.broadcast(SimTime::ZERO, Payload::from("b"), &mut actions)
            .unwrap();
        let trees: Vec<_> = actions
            .sends()
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Data(d) => Some(Arc::as_ptr(&d.tree)),
                _ => None,
            })
            .collect();
        assert!(trees.windows(2).all(|w| w[0] == w[1]));
    }
}

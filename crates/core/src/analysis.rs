//! Closed-form analysis of the two-path example (Section 1, Appendix A,
//! Figure 1).
//!
//! Two nodes are connected by two independent paths: path one loses
//! messages with probability `L`, path two with probability `αL`
//! (`α > 1`). A *typical* gossip algorithm splits its `k₀` messages evenly
//! across both paths; the *adaptive* algorithm sends all `k₁` messages
//! down the more reliable path. Equating the two delivery probabilities
//! yields the paper's headline ratio `k₁/k₀ = ½·log_L α + 1` (< 1).

// lint:allow-file(det-pow): closed-form paper figures computed locally for display; nothing here is re-derived from gossip, so cross-host bit-identity is not required.

use crate::CoreError;

/// Validates the two-path parameters: `0 < l < 1`, `alpha ≥ 1`, and
/// `alpha * l ≤ 1`.
fn validate(alpha: f64, l: f64) -> Result<(), CoreError> {
    if !(l.is_finite() && 0.0 < l && l < 1.0) {
        return Err(CoreError::InvalidTarget(l));
    }
    if !(alpha.is_finite() && alpha >= 1.0 && alpha * l <= 1.0) {
        return Err(CoreError::InvalidTarget(alpha));
    }
    Ok(())
}

/// Probability that at least one of `k0` messages arrives under the
/// *typical* gossip algorithm, which alternates paths:
/// `1 - (√α · L)^{k0}` (Appendix A).
///
/// # Errors
///
/// Returns [`CoreError::InvalidTarget`] for parameters outside
/// `0 < l < 1`, `alpha ≥ 1`, `alpha·l ≤ 1`.
pub fn typical_gossip_reach(k0: u32, l: f64, alpha: f64) -> Result<f64, CoreError> {
    validate(alpha, l)?;
    Ok(1.0 - (alpha.sqrt() * l).powi(k0 as i32))
}

/// Probability that at least one of `k1` messages arrives under the
/// *adaptive* algorithm, which always uses the better path: `1 - L^{k1}`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTarget`] unless `0 < l < 1`.
pub fn adaptive_reach(k1: u32, l: f64) -> Result<f64, CoreError> {
    validate(1.0, l)?;
    Ok(1.0 - l.powi(k1 as i32))
}

/// The message ratio `k₁/k₀ = ½·log_L α + 1` at equal reliability
/// (Figure 1's y-axis).
///
/// Since `0 < L < 1`, `log_L α = ln α / ln L` is negative for `α > 1`, so
/// the ratio is below 1: the adaptive algorithm needs *fewer* messages.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTarget`] for parameters outside
/// `0 < l < 1`, `alpha ≥ 1`, `alpha·l ≤ 1`.
///
/// # Example
///
/// The paper: "when α = 10 … L = 0.0001, an adaptive algorithm only needs
/// about 87% of the messages sent by a traditional gossip algorithm".
///
/// ```
/// use diffuse_core::analysis::message_ratio;
///
/// let ratio = message_ratio(10.0, 1e-4)?;
/// assert!((ratio - 0.875).abs() < 0.001);
/// # Ok::<(), diffuse_core::CoreError>(())
/// ```
pub fn message_ratio(alpha: f64, l: f64) -> Result<f64, CoreError> {
    validate(alpha, l)?;
    Ok(0.5 * (alpha.ln() / l.ln()) + 1.0)
}

/// Messages the adaptive algorithm needs to match `k0` typical-gossip
/// messages, rounded up: `⌈k0 · (½·log_L α + 1)⌉`.
///
/// # Errors
///
/// Same conditions as [`message_ratio`].
pub fn equivalent_adaptive_messages(k0: u32, l: f64, alpha: f64) -> Result<u32, CoreError> {
    let ratio = message_ratio(alpha, l)?;
    Ok((k0 as f64 * ratio).ceil() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_paths_have_ratio_one() {
        // α = 1: no difference between the algorithms.
        assert!((message_ratio(1.0, 0.01).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_number() {
        // α = 10, L = 1e-4 → ≈ 0.875 ("about 87%").
        let r = message_ratio(10.0, 1e-4).unwrap();
        assert!((r - 0.875).abs() < 1e-3, "ratio {r}");
    }

    #[test]
    fn ratio_decreases_with_alpha_and_grows_with_reliability() {
        // More lopsided paths → bigger advantage (smaller ratio).
        let r2 = message_ratio(2.0, 0.01).unwrap();
        let r10 = message_ratio(10.0, 0.01).unwrap();
        assert!(r10 < r2);
        // Less reliable best path (larger L) → bigger advantage too.
        let r_good = message_ratio(10.0, 1e-4).unwrap();
        let r_bad = message_ratio(10.0, 1e-2).unwrap();
        assert!(r_bad < r_good);
    }

    #[test]
    fn reach_formulas_agree_at_the_equated_point() {
        // By construction: typical with k0 equals adaptive with
        // k1 = k0 * ratio (allowing fractional k1 via powf).
        let (k0, l, alpha) = (10u32, 0.01, 4.0);
        let ratio = message_ratio(alpha, l).unwrap();
        let typical = typical_gossip_reach(k0, l, alpha).unwrap();
        let k1 = k0 as f64 * ratio;
        let adaptive = 1.0 - l.powf(k1);
        assert!((typical - adaptive).abs() < 1e-9);
    }

    #[test]
    fn adaptive_beats_typical_for_equal_message_count() {
        let (k, l, alpha) = (6u32, 0.05, 5.0);
        let typical = typical_gossip_reach(k, l, alpha).unwrap();
        let adaptive = adaptive_reach(k, l).unwrap();
        assert!(adaptive > typical);
    }

    #[test]
    fn equivalent_messages_round_up() {
        let k1 = equivalent_adaptive_messages(10, 1e-4, 10.0).unwrap();
        assert_eq!(k1, 9); // 10 * 0.875 = 8.75 → 9
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(message_ratio(0.5, 0.01).is_err()); // α < 1
        assert!(message_ratio(10.0, 0.0).is_err()); // L = 0
        assert!(message_ratio(10.0, 1.0).is_err()); // L = 1
        assert!(message_ratio(200.0, 0.01).is_err()); // αL > 1
        assert!(typical_gossip_reach(5, -0.1, 2.0).is_err());
        assert!(adaptive_reach(5, 2.0).is_err());
    }
}

//! The paper's primary contribution: optimal and adaptive probabilistic
//! reliable broadcast.
//!
//! This crate implements Sections 3–4 of *An Adaptive Algorithm for
//! Efficient Message Diffusion in Unreliable Environments* (Garbinato,
//! Pedone, Schmidt — DSN 2004):
//!
//! * [`reach`] / [`reach_recursive`] — the probability that every process
//!   in a tree receives at least one message copy (Eq. 1 / Eq. 2);
//! * [`optimize`] — the provably optimal assignment of per-link message
//!   counts meeting a target reliability `K` (Algorithm 2), computed by
//!   an `O(L log L)` closed-form waterfilling solver
//!   ([`optimize_waterfill`]) that is bit-identical to the paper's
//!   increment-at-a-time greedy (kept as [`optimize_greedy`]); plus the
//!   budget-constrained dual [`optimize_budget`] /
//!   [`optimize_budget_waterfill`] (Eq. 5) and an exhaustive test oracle
//!   [`optimize_exhaustive`];
//! * [`OptimalBroadcast`] — Algorithm 1, broadcast along the Maximum
//!   Reliability Tree with exact knowledge;
//! * [`AdaptiveBroadcast`] — Algorithms 3–5, the same broadcast activity
//!   fed by continuously approximated knowledge (heartbeats, Bayesian
//!   estimators, distortion factors);
//! * [`ReferenceGossip`] — Section 5's baseline: step-based flooding
//!   gossip with ACK suppression;
//! * [`analysis`] — the closed-form two-path analysis behind Figure 1.
//!
//! All protocols implement the sans-io [`Protocol`] trait and run
//! unchanged on the deterministic simulator (`diffuse-sim`, via
//! [`ProtocolActor`]) or a real transport (`diffuse-net`).
//!
//! # Example
//!
//! ```
//! use diffuse_core::{optimize, reach, MessageVector, ReliabilityTree, WireTree};
//! use diffuse_model::ProcessId;
//!
//! # fn main() -> Result<(), diffuse_core::CoreError> {
//! // A two-link chain: root → p1 (λ=0.2) → p2 (λ=0.05).
//! let wire = WireTree::from_parts(
//!     ProcessId::new(0),
//!     vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
//!     vec![0, 1],
//!     vec![0.2, 0.05],
//! )?;
//! let tree = ReliabilityTree::from_wire(&wire)?;
//!
//! // One copy per link reaches everyone with probability 0.76.
//! let base = reach(&tree, &MessageVector::ones(2));
//! assert!((base - 0.8 * 0.95).abs() < 1e-12);
//!
//! // The optimizer finds the cheapest plan for 99.9%.
//! let plan = optimize(&tree, 0.999)?;
//! assert!(plan.reach() >= 0.999);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod adaptive;
pub mod adversary;
pub mod analysis;
mod error;
mod gossip;
mod knowledge;
mod optimal;
mod optimize;
mod params;
mod protocol;
mod reach;
pub mod scenario;
mod tree;
mod waterfill;

pub use adaptive::AdaptiveBroadcast;
pub use adversary::{
    adversary_seed, corrupt_heartbeat, Adversary, Containment, CorruptionMode, ProtocolAudit,
    SenderAudit,
};
pub use diffuse_sim::TimerId;
pub use error::CoreError;
pub use gossip::ReferenceGossip;
pub use knowledge::{DeltaView, NetworkKnowledge, View};
pub use optimal::OptimalBroadcast;
pub use optimize::{
    gain, optimize, optimize_budget, optimize_budget_greedy, optimize_exhaustive, optimize_greedy,
    MessagePlan,
};
pub use params::{
    AdaptiveParams, CorrectionMode, LinkBlame, ReconcileMode, ViewMode, DEFAULT_EVIDENCE_BATCH,
};
pub use protocol::{
    Actions, BroadcastId, DataMessage, Event, GossipMessage, HeartbeatMessage, HeartbeatView,
    LegacyTickShim, Message, Payload, Protocol, ProtocolActor, TimerOp,
};
pub use reach::{link_success, pow_det, reach, reach_recursive, MessageVector};
pub use scenario::{
    FaultAction, FaultScript, FaultSink, Scenario, ScenarioBuilder, ScenarioReport, ScenarioSim,
    ScriptSchedule, ShardedScenarioSim, Workload, WorkloadEvent,
};
pub use tree::{ReliabilityTree, SharedWireTree, WireTree};
pub use waterfill::{optimize_budget_waterfill, optimize_waterfill};

/// Shared fixtures for the crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use diffuse_model::ProcessId;

    use crate::{ReliabilityTree, WireTree};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// A chain `0 → 1 → 2 → …` with the given λ per consecutive link.
    pub fn chain_tree(lambdas: &[f64]) -> ReliabilityTree {
        let n = lambdas.len();
        let nodes: Vec<ProcessId> = (0..=n as u32).map(p).collect();
        let parent: Vec<u32> = (0..n as u32).collect();
        let wire =
            WireTree::from_parts(p(0), nodes, parent, lambdas.to_vec()).expect("valid chain");
        ReliabilityTree::from_wire(&wire).expect("valid chain")
    }

    /// A star: root `0` with one leaf per λ.
    pub fn star_tree(lambdas: &[f64]) -> ReliabilityTree {
        let n = lambdas.len();
        let nodes: Vec<ProcessId> = (0..=n as u32).map(p).collect();
        let parent: Vec<u32> = vec![0; n];
        let wire = WireTree::from_parts(p(0), nodes, parent, lambdas.to_vec()).expect("valid star");
        ReliabilityTree::from_wire(&wire).expect("valid star")
    }

    /// A mixed-shape tree: `0 → {1, 2}`, `1 → {3, 4}`, `2 → {5}`.
    pub fn tree_with_lambdas() -> ReliabilityTree {
        let nodes: Vec<ProcessId> = (0..6u32).map(p).collect();
        let parent = vec![0, 0, 1, 1, 2];
        let lambdas = vec![0.1, 0.3, 0.2, 0.05, 0.4];
        let wire = WireTree::from_parts(p(0), nodes, parent, lambdas).expect("valid tree");
        ReliabilityTree::from_wire(&wire).expect("valid tree")
    }

    /// A single-process tree (no links).
    pub fn singleton_tree() -> ReliabilityTree {
        let wire = WireTree::from_parts(p(0), vec![p(0)], vec![], vec![]).expect("valid singleton");
        ReliabilityTree::from_wire(&wire).expect("valid singleton")
    }
}

#[cfg(test)]
mod property_tests {
    use super::tests_support::*;
    use super::*;
    use proptest::prelude::*;

    fn arb_lambdas() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.0f64..0.95, 1..8)
    }

    proptest! {
        /// Eq. 1 == Eq. 2 on random chains and stars with random counts.
        #[test]
        fn prop_recursive_equals_iterative(
            lambdas in arb_lambdas(),
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for tree in [chain_tree(&lambdas), star_tree(&lambdas)] {
                let counts: Vec<u32> =
                    (0..tree.link_count()).map(|_| rng.gen_range(1..5)).collect();
                let m = MessageVector::from_counts(counts);
                let a = reach(&tree, &m);
                let b = reach_recursive(&tree, &m, tree.tree().root());
                prop_assert!((a - b).abs() < 1e-12);
            }
        }

        /// The optimizer always meets its target (when it succeeds) and
        /// never assigns zero messages to a link.
        #[test]
        fn prop_optimize_meets_target(
            lambdas in arb_lambdas(),
            k in 0.5f64..0.9999,
        ) {
            let tree = chain_tree(&lambdas);
            let plan = optimize(&tree, k).unwrap();
            prop_assert!(plan.reach() >= k - 1e-9);
            prop_assert!(plan.vector().counts().iter().all(|&c| c >= 1));
        }

        /// Removing one message from any link of an optimal plan drops
        /// the reach below the target — no message is wasted.
        #[test]
        fn prop_optimize_is_tight(
            lambdas in proptest::collection::vec(0.05f64..0.9, 1..6),
            k in 0.6f64..0.999,
        ) {
            let tree = chain_tree(&lambdas);
            let plan = optimize(&tree, k).unwrap();
            for j in 0..tree.link_count() {
                if plan.count(j) > 1 {
                    let mut counts = plan.vector().counts().to_vec();
                    counts[j] -= 1;
                    let reduced = reach(&tree, &MessageVector::from_counts(counts));
                    prop_assert!(
                        reduced < k,
                        "removing a message from link {} kept reach {} >= {}",
                        j, reduced, k
                    );
                }
            }
        }

        /// Greedy equals the exhaustive oracle on small random trees.
        #[test]
        fn prop_greedy_is_optimal(
            lambdas in proptest::collection::vec(0.1f64..0.6, 1..4),
            k in 0.5f64..0.99,
        ) {
            let tree = star_tree(&lambdas);
            let greedy = optimize(&tree, k).unwrap();
            // Worst case here: λ=0.6, k=0.99 over 3 links needs ~12 copies.
            let oracle = optimize_exhaustive(&tree, k, 12).unwrap();
            prop_assert_eq!(greedy.total_messages(), oracle.total_messages());
        }

        /// The budget dual with the primal's budget reaches the primal's
        /// target.
        #[test]
        fn prop_duality(
            lambdas in proptest::collection::vec(0.05f64..0.8, 1..6),
            k in 0.5f64..0.999,
        ) {
            let tree = chain_tree(&lambdas);
            let primal = optimize(&tree, k).unwrap();
            let dual = optimize_budget(&tree, primal.total_messages()).unwrap();
            prop_assert!(dual.reach() >= k - 1e-12);
        }

        /// The waterfilling solver is bit-identical to the reference
        /// greedy — counts *and* reach — on random tree shapes across
        /// the full λ range and the paper's reliability targets.
        /// Determinism of the plan bytes is a protocol requirement:
        /// every receiver of a wire tree re-derives the sender's plan.
        #[test]
        fn prop_waterfill_is_bit_identical_to_greedy(
            lambdas in proptest::collection::vec(0.0f64..0.99, 1..10),
            shape_seed in any::<u64>(),
            k_pick in 0usize..3,
        ) {
            let k = [0.9, 0.999, 0.999999][k_pick];
            let tree = random_shape_tree(&lambdas, shape_seed);
            let fast = optimize_waterfill(&tree, k).unwrap();
            let slow = optimize_greedy(&tree, k).unwrap();
            prop_assert_eq!(fast.vector().counts(), slow.vector().counts());
            prop_assert_eq!(fast.reach().to_bits(), slow.reach().to_bits());
            // The public entry point rides the fast path.
            prop_assert_eq!(&optimize(&tree, k).unwrap(), &slow);
        }

        /// The plateau regime: λ → 1 with deep reliability targets,
        /// where consecutive gains round to the same `f64`. The
        /// class-cursor tail drills plateaus directly (no heap
        /// fallback), so it must still match the reference greedy bit
        /// for bit.
        #[test]
        fn prop_waterfill_plateau_regime_is_bit_identical(
            lambdas in proptest::collection::vec(0.9f64..0.99, 1..4),
            shape_seed in any::<u64>(),
            k_pick in 0usize..2,
        ) {
            let k = [0.99999, 0.9999999][k_pick];
            let tree = random_shape_tree(&lambdas, shape_seed);
            let fast = optimize_waterfill(&tree, k).unwrap();
            let slow = optimize_greedy(&tree, k).unwrap();
            prop_assert_eq!(fast.vector().counts(), slow.vector().counts());
            prop_assert_eq!(fast.reach().to_bits(), slow.reach().to_bits());
        }

        /// Budget-dual bit-identity on random shapes and budgets.
        #[test]
        fn prop_budget_waterfill_is_bit_identical_to_greedy(
            lambdas in proptest::collection::vec(0.0f64..0.99, 1..10),
            shape_seed in any::<u64>(),
            extra in 0u64..3000,
        ) {
            let tree = random_shape_tree(&lambdas, shape_seed);
            let budget = tree.link_count() as u64 + extra;
            let fast = optimize_budget_waterfill(&tree, budget).unwrap();
            let slow = optimize_budget_greedy(&tree, budget).unwrap();
            prop_assert_eq!(fast.vector().counts(), slow.vector().counts());
            prop_assert_eq!(fast.reach().to_bits(), slow.reach().to_bits());
            prop_assert_eq!(&optimize_budget(&tree, budget).unwrap(), &slow);
        }

        /// The cached MessageVector total always equals the fresh sum,
        /// through arbitrary construction + increment sequences.
        #[test]
        fn prop_message_vector_total_stays_cached(
            counts in proptest::collection::vec(1u32..50, 1..12),
            increment_seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut m = MessageVector::from_counts(counts);
            let mut rng = rand::rngs::StdRng::seed_from_u64(increment_seed);
            for _ in 0..64 {
                let j = rng.gen_range(0..m.len());
                m.increment(j);
                let fresh: u64 = m.counts().iter().map(|&c| c as u64).sum();
                prop_assert_eq!(m.total(), fresh);
            }
        }
    }

    /// A random tree over `lambdas.len() + 1` processes: node `i + 1`
    /// hangs off a uniformly chosen earlier node, covering chains, stars
    /// and everything between.
    fn random_shape_tree(lambdas: &[f64], seed: u64) -> ReliabilityTree {
        use diffuse_model::ProcessId;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = lambdas.len();
        let nodes: Vec<ProcessId> = (0..=n as u32).map(ProcessId::new).collect();
        let parent: Vec<u32> = (0..n as u32).map(|i| rng.gen_range(0..=i)).collect();
        let wire = WireTree::from_parts(ProcessId::new(0), nodes, parent, lambdas.to_vec())
            .expect("valid random tree");
        ReliabilityTree::from_wire(&wire).expect("valid random tree")
    }
}

//! Reliability-labelled trees and their wire representation.

use std::collections::BTreeMap;
use std::sync::Arc;

use diffuse_graph::SpanningTree;
use diffuse_model::{Configuration, ProcessId};

use crate::CoreError;

/// A spanning tree labelled for the optimization problem of Section 3.2.
///
/// Every non-root process `p_i` is assigned a dense *link index*
/// (breadth-first order) addressing the tree link `l_i` that leads to it,
/// and every link carries its single-transmission failure probability
/// `λ_i = 1 - (1 - P_{pred(i)})(1 - L_i)(1 - P_i)` (Eq. 1).
///
/// The λ labels are *baked in* at construction: Algorithm 1 ships the tree
/// together with data messages, and every receiver must re-derive exactly
/// the same per-link message counts, so all of them must work from the
/// sender's reliability view rather than their own.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityTree {
    tree: SpanningTree,
    /// `index_of[p]` is the link index of the link leading to `p`.
    index_of: BTreeMap<ProcessId, usize>,
    /// `process_at[i]` is the process reached through link index `i`.
    process_at: Vec<ProcessId>,
    /// `lambda[i]` is λ of link index `i`.
    lambda: Vec<f64>,
}

impl ReliabilityTree {
    /// Labels `tree` with λ values computed from `config`.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for future
    /// validation and keeps call sites uniform with
    /// [`ReliabilityTree::from_wire`].
    pub fn from_spanning_tree(
        tree: &SpanningTree,
        config: &Configuration,
    ) -> Result<Self, CoreError> {
        let mut index_of = BTreeMap::new();
        let mut process_at = Vec::with_capacity(tree.link_count());
        let mut lambda = Vec::with_capacity(tree.link_count());
        for (parent, child) in tree.edges() {
            index_of.insert(child, process_at.len());
            process_at.push(child);
            lambda.push(config.lambda(parent, child).value());
        }
        Ok(ReliabilityTree {
            tree: tree.clone(),
            index_of,
            process_at,
            lambda,
        })
    }

    /// Reconstructs a labelled tree from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedWireTree`] if the wire data is
    /// inconsistent (see [`WireTree`] invariants).
    pub fn from_wire(wire: &WireTree) -> Result<Self, CoreError> {
        wire.validate()?;
        let mut parents = BTreeMap::new();
        for (i, &p) in wire.nodes.iter().enumerate().skip(1) {
            let parent = wire.nodes[wire.parent[i - 1] as usize];
            parents.insert(p, parent);
        }
        let tree = SpanningTree::from_parents(wire.root, parents)
            .map_err(|_| CoreError::MalformedWireTree("parent indices do not form a tree"))?;

        // Re-index in the *tree's* BFS order; λ values come from the wire.
        let wire_index: BTreeMap<ProcessId, usize> = wire
            .nodes
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &p)| (p, i - 1))
            .collect();
        let mut index_of = BTreeMap::new();
        let mut process_at = Vec::with_capacity(tree.link_count());
        let mut lambda = Vec::with_capacity(tree.link_count());
        for (_, child) in tree.edges() {
            index_of.insert(child, process_at.len());
            process_at.push(child);
            lambda.push(wire.lambda[wire_index[&child]]);
        }
        Ok(ReliabilityTree {
            tree,
            index_of,
            process_at,
            lambda,
        })
    }

    /// The underlying rooted tree.
    pub fn tree(&self) -> &SpanningTree {
        &self.tree
    }

    /// The root (broadcasting) process.
    pub fn root(&self) -> ProcessId {
        self.tree.root()
    }

    /// Number of tree links (`|Π| - 1`).
    pub fn link_count(&self) -> usize {
        self.lambda.len()
    }

    /// λ of the link with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lambda(&self, i: usize) -> f64 {
        self.lambda[i]
    }

    /// All λ values, indexed by link index.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambda
    }

    /// Link index of the link leading to `p`; `None` for the root or
    /// unknown processes.
    pub fn index_of(&self, p: ProcessId) -> Option<usize> {
        self.index_of.get(&p).copied()
    }

    /// The process reached through link index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process_at(&self, i: usize) -> ProcessId {
        self.process_at[i]
    }

    /// Children of `p` in the tree (its direct subtrees `S_p`).
    pub fn children(&self, p: ProcessId) -> &[ProcessId] {
        self.tree.children(p)
    }

    /// Serializes into the wire form shipped with data messages.
    pub fn to_wire(&self) -> WireTree {
        let mut nodes = Vec::with_capacity(self.tree.process_count());
        nodes.push(self.root());
        let mut node_index: BTreeMap<ProcessId, u32> = BTreeMap::new();
        node_index.insert(self.root(), 0);
        let mut parent = Vec::with_capacity(self.link_count());
        let mut lambda = Vec::with_capacity(self.link_count());
        for (par, child) in self.tree.edges() {
            parent.push(node_index[&par]);
            node_index.insert(child, nodes.len() as u32);
            nodes.push(child);
            lambda.push(self.lambda[self.index_of[&child]]);
        }
        WireTree {
            root: self.root(),
            nodes,
            parent,
            lambda,
        }
    }
}

/// The serializable tree representation attached to data messages.
///
/// Algorithm 1 sends `(m, mrt_j)` — the message together with the tree it
/// must follow. `WireTree` is that `mrt_j`: a compact, position-indexed
/// encoding with the sender's λ per link, so every receiver re-derives
/// the same [`MessagePlan`](crate::MessagePlan) deterministically.
///
/// Invariants (checked by [`ReliabilityTree::from_wire`]):
///
/// * `nodes` is non-empty and duplicate-free, `nodes[0]` is `root`;
/// * `parent.len() == lambda.len() == nodes.len() - 1`;
/// * `parent[i] < i + 1` (parents precede children — BFS order);
/// * every λ is a finite value in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTree {
    pub(crate) root: ProcessId,
    pub(crate) nodes: Vec<ProcessId>,
    pub(crate) parent: Vec<u32>,
    pub(crate) lambda: Vec<f64>,
}

impl WireTree {
    /// The tree's root process.
    pub fn root(&self) -> ProcessId {
        self.root
    }

    /// Number of processes in the tree.
    pub fn process_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` iff `p` appears in the tree.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.nodes.contains(&p)
    }

    /// Raw field access for codecs: `(root, nodes, parent, lambda)`.
    pub fn parts(&self) -> (ProcessId, &[ProcessId], &[u32], &[f64]) {
        (self.root, &self.nodes, &self.parent, &self.lambda)
    }

    /// Rebuilds a wire tree from raw parts (the codec's inverse of
    /// [`WireTree::parts`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedWireTree`] on inconsistent input.
    pub fn from_parts(
        root: ProcessId,
        nodes: Vec<ProcessId>,
        parent: Vec<u32>,
        lambda: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let wire = WireTree {
            root,
            nodes,
            parent,
            lambda,
        };
        wire.validate()?;
        Ok(wire)
    }

    /// Approximate encoded size in bytes (for bandwidth accounting).
    pub fn wire_size(&self) -> usize {
        4 + self.nodes.len() * 4 + self.parent.len() * 4 + self.lambda.len() * 8
    }

    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if self.nodes.is_empty() {
            return Err(CoreError::MalformedWireTree("empty node list"));
        }
        if self.nodes[0] != self.root {
            return Err(CoreError::MalformedWireTree("nodes[0] must be the root"));
        }
        if self.parent.len() != self.nodes.len() - 1 || self.lambda.len() != self.parent.len() {
            return Err(CoreError::MalformedWireTree("length mismatch"));
        }
        for (i, &par) in self.parent.iter().enumerate() {
            if par as usize > i {
                return Err(CoreError::MalformedWireTree(
                    "parent index must precede child (BFS order)",
                ));
            }
        }
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.nodes.len() {
            return Err(CoreError::MalformedWireTree("duplicate process in tree"));
        }
        if self
            .lambda
            .iter()
            .any(|l| !l.is_finite() || !(0.0..=1.0).contains(l))
        {
            return Err(CoreError::MalformedWireTree("lambda out of range"));
        }
        Ok(())
    }
}

/// A shared, immutable wire tree as carried inside data messages.
pub type SharedWireTree = Arc<WireTree>;

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_model::{Probability, Topology};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample_tree() -> (SpanningTree, Configuration) {
        // 0 → {1, 2}; 1 → {3}.
        let parents: BTreeMap<ProcessId, ProcessId> = [(p(1), p(0)), (p(2), p(0)), (p(3), p(1))]
            .into_iter()
            .collect();
        let tree = SpanningTree::from_parents(p(0), parents).unwrap();
        let mut topo = Topology::new();
        for (a, b) in tree.edges() {
            topo.add_link(a, b).unwrap();
        }
        let mut config = Configuration::uniform(
            &topo,
            Probability::new(0.1).unwrap(),
            Probability::new(0.2).unwrap(),
        );
        config.set_crash(p(3), Probability::new(0.5).unwrap());
        (tree, config)
    }

    #[test]
    fn labels_follow_bfs_order() {
        let (tree, config) = sample_tree();
        let rt = ReliabilityTree::from_spanning_tree(&tree, &config).unwrap();
        assert_eq!(rt.link_count(), 3);
        assert_eq!(rt.process_at(0), p(1));
        assert_eq!(rt.process_at(1), p(2));
        assert_eq!(rt.process_at(2), p(3));
        assert_eq!(rt.index_of(p(3)), Some(2));
        assert_eq!(rt.index_of(p(0)), None);
        assert_eq!(rt.index_of(p(42)), None);
    }

    #[test]
    fn lambda_matches_formula() {
        let (tree, config) = sample_tree();
        let rt = ReliabilityTree::from_spanning_tree(&tree, &config).unwrap();
        // λ for link 0→1: 1 - 0.9 * 0.8 * 0.9.
        assert!((rt.lambda(0) - (1.0 - 0.9 * 0.8 * 0.9)).abs() < 1e-12);
        // λ for link 1→3: 1 - 0.9 * 0.8 * 0.5 (p3 crashes half the time).
        assert!((rt.lambda(2) - (1.0 - 0.9 * 0.8 * 0.5)).abs() < 1e-12);
        assert_eq!(rt.lambdas().len(), 3);
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let (tree, config) = sample_tree();
        let rt = ReliabilityTree::from_spanning_tree(&tree, &config).unwrap();
        let wire = rt.to_wire();
        assert_eq!(wire.root(), p(0));
        assert_eq!(wire.process_count(), 4);
        assert!(wire.contains(p(3)));
        assert!(!wire.contains(p(9)));
        assert!(wire.wire_size() > 0);

        let back = ReliabilityTree::from_wire(&wire).unwrap();
        assert_eq!(back.root(), rt.root());
        assert_eq!(back.link_count(), rt.link_count());
        for i in 0..rt.link_count() {
            assert_eq!(back.process_at(i), rt.process_at(i));
            assert!((back.lambda(i) - rt.lambda(i)).abs() < 1e-15);
        }
        assert_eq!(back.children(p(0)), rt.children(p(0)));
    }

    #[test]
    fn from_parts_validates() {
        // Valid single-edge tree.
        let ok = WireTree::from_parts(p(0), vec![p(0), p(1)], vec![0], vec![0.5]);
        assert!(ok.is_ok());

        // Root mismatch.
        assert!(matches!(
            WireTree::from_parts(p(1), vec![p(0), p(1)], vec![0], vec![0.5]),
            Err(CoreError::MalformedWireTree(_))
        ));
        // Length mismatch.
        assert!(WireTree::from_parts(p(0), vec![p(0), p(1)], vec![0], vec![]).is_err());
        // Forward parent reference.
        assert!(
            WireTree::from_parts(p(0), vec![p(0), p(1), p(2)], vec![2, 0], vec![0.1, 0.1]).is_err()
        );
        // Duplicate node.
        assert!(
            WireTree::from_parts(p(0), vec![p(0), p(1), p(1)], vec![0, 0], vec![0.1, 0.1]).is_err()
        );
        // Lambda out of range.
        assert!(WireTree::from_parts(p(0), vec![p(0), p(1)], vec![0], vec![1.5]).is_err());
        // Empty.
        assert!(WireTree::from_parts(p(0), vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn singleton_tree_round_trips() {
        let tree = SpanningTree::from_parents(p(7), BTreeMap::new()).unwrap();
        let rt = ReliabilityTree::from_spanning_tree(&tree, &Configuration::new()).unwrap();
        assert_eq!(rt.link_count(), 0);
        let wire = rt.to_wire();
        let back = ReliabilityTree::from_wire(&wire).unwrap();
        assert_eq!(back.root(), p(7));
        assert_eq!(back.link_count(), 0);
    }
}

//! Tunables for the adaptive protocol.

use diffuse_bayes::DEFAULT_INTERVALS;

/// How sequence numbers reconcile suspicions on heartbeat receipt
/// (Algorithm 4, Event 1).
///
/// See DESIGN.md §4.4 for the full analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconcileMode {
    /// `adjust = suspected - missed`, where
    /// `missed = seq_gap - 1` is the number of heartbeats provably sent
    /// but never received, minus misses excused by the receiver's own
    /// downtime. Each received heartbeat additionally counts as one
    /// success observation for the link. This variant converges to the
    /// true loss rate.
    #[default]
    SeqGap,
    /// The paper's literal formula `adjust = suspected - seq_gap`, with
    /// no success observations. Provided for the ablation benchmark; it
    /// penalizes a link once per *successful* heartbeat and cannot
    /// converge.
    PaperLiteral,
}

/// How an over-suspicion (`adjust > 0`) is compensated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrectionMode {
    /// Exactly invert the earlier `decreaseReliability` updates
    /// (divide the posterior by the same likelihood). Unbiased.
    #[default]
    Exact,
    /// The paper's `increaseReliability` — a fresh Bayesian success
    /// observation. Does not cancel the earlier decrease exactly, biasing
    /// the posterior slightly on every over-suspicion.
    Bayes,
}

/// When a missing heartbeat is blamed on the *link* (the neighbor process
/// is always blamed at timeout, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkBlame {
    /// The paper's behavior (Algorithm 4, line 39), and the default:
    /// decrease the link estimate on every timeout, then settle at
    /// reconciliation — with [`CorrectionMode::Exact`] a sender that was
    /// merely crashed (no sequence gap) gets its link's decreases undone
    /// exactly. Reacts immediately to dead links and partitions.
    #[default]
    OnTimeout,
    /// Blame the link only at reconciliation time, when a sequence gap
    /// *proves* a loss. Unbiased, but a *fully* cut link never reconciles
    /// and therefore never degrades — kept for the ablation benchmark.
    OnReconcile,
}

/// What the approximation activity's heartbeats carry.
///
/// Both modes produce **bit-identical** estimates, broadcast plans and
/// wire metrics — asserted by the full-vs-delta equivalence property
/// test — because a delta heartbeat, combined with the receiver-side
/// mirror of the sender's view, reconstructs exactly the merges a full
/// view would have performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewMode {
    /// Heartbeats carry the entries changed since the receiver's last
    /// acknowledged merge (cumulative deltas keyed by a view
    /// generation), with a full-view fallback on first contact, on any
    /// topology change, and until the latest full view is acknowledged.
    /// The default: per-heartbeat cost is O(changes), not
    /// O(processes + links).
    #[default]
    Delta,
    /// Every heartbeat carries the complete `(Λ_k, C_k)` view and the
    /// receiver re-evaluates every entry — the paper's literal
    /// Algorithm 4 data flow, kept as the executable specification (and
    /// the baseline the delta path is benchmarked against).
    Full,
}

/// Parameters of the adaptive protocol (Section 4).
///
/// Use the builder-style `with_*` methods to adjust individual knobs:
///
/// ```
/// use diffuse_core::AdaptiveParams;
///
/// let params = AdaptiveParams::default()
///     .with_target_reliability(0.999)
///     .with_heartbeat_period(5)
///     .with_intervals(50);
/// assert_eq!(params.heartbeat_period, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveParams {
    /// Target reliability `K` for broadcasts (paper: 0.9999).
    pub target_reliability: f64,
    /// Heartbeat period `δ`, in ticks.
    pub heartbeat_period: u64,
    /// Number of Bayesian probability intervals `U` (paper: 100).
    pub intervals: usize,
    /// Self-monitoring period `∆tick` (Events 3–4), in ticks.
    pub self_tick_period: u64,
    /// Whether to grow a peer's suspicion timeout after repeated
    /// over-suspicion (Algorithm 4, line 23).
    pub timeout_growth: bool,
    /// Suspicion reconciliation formula.
    pub reconcile: ReconcileMode,
    /// Over-suspicion compensation operator.
    pub correction: CorrectionMode,
    /// When the link (vs the process) takes the blame for silence.
    pub link_blame: LinkBlame,
    /// What heartbeats carry: changed-entry deltas (default) or full
    /// views (the executable specification).
    pub heartbeat_views: ViewMode,
    /// How many link/self observations accumulate before they are folded
    /// into the Bayesian estimator as one batched
    /// `increase_reliability(k)` / `decrease_reliability(k)` update.
    ///
    /// `1` reproduces the paper's per-observation updates exactly. The
    /// default of 16 keeps steady-state delta views sparse (an entry's
    /// version only moves on flush) at the cost of estimates lagging the
    /// newest `evidence_batch - 1` observations. Capped at 32 so every
    /// flush stays on the estimator's linear (bit-specified) path.
    pub evidence_batch: u32,
}

/// Default [`AdaptiveParams::evidence_batch`]: sparse steady-state deltas
/// while staying well inside the estimator's linear-path bound (32).
pub const DEFAULT_EVIDENCE_BATCH: u32 = 16;

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            target_reliability: 0.9999,
            heartbeat_period: 1,
            intervals: DEFAULT_INTERVALS,
            self_tick_period: 1,
            timeout_growth: true,
            reconcile: ReconcileMode::default(),
            correction: CorrectionMode::default(),
            link_blame: LinkBlame::default(),
            heartbeat_views: ViewMode::default(),
            evidence_batch: DEFAULT_EVIDENCE_BATCH,
        }
    }
}

impl AdaptiveParams {
    /// Replaces the broadcast target reliability `K`.
    #[must_use]
    pub fn with_target_reliability(mut self, k: f64) -> Self {
        self.target_reliability = k;
        self
    }

    /// Replaces the heartbeat period `δ` (clamped to at least 1 tick).
    #[must_use]
    pub fn with_heartbeat_period(mut self, ticks: u64) -> Self {
        self.heartbeat_period = ticks.max(1);
        self
    }

    /// Replaces the number of Bayesian intervals `U`.
    ///
    /// # Panics
    ///
    /// Panics if `intervals == 0`.
    #[must_use]
    pub fn with_intervals(mut self, intervals: usize) -> Self {
        assert!(intervals > 0, "at least one probability interval required");
        self.intervals = intervals;
        self
    }

    /// Replaces the self-monitoring period `∆tick` (clamped to ≥ 1).
    #[must_use]
    pub fn with_self_tick_period(mut self, ticks: u64) -> Self {
        self.self_tick_period = ticks.max(1);
        self
    }

    /// Enables or disables suspicion-timeout growth.
    #[must_use]
    pub fn with_timeout_growth(mut self, enabled: bool) -> Self {
        self.timeout_growth = enabled;
        self
    }

    /// Replaces the evidence batch size (clamped to `1..=32`; see
    /// [`AdaptiveParams::evidence_batch`]). `1` restores the paper's
    /// per-observation updates.
    #[must_use]
    pub fn with_evidence_batch(mut self, observations: u32) -> Self {
        self.evidence_batch = observations.clamp(1, 32);
        self
    }

    /// Replaces the reconciliation mode.
    #[must_use]
    pub fn with_reconcile(mut self, mode: ReconcileMode) -> Self {
        self.reconcile = mode;
        self
    }

    /// Replaces the correction mode.
    #[must_use]
    pub fn with_correction(mut self, mode: CorrectionMode) -> Self {
        self.correction = mode;
        self
    }

    /// Replaces the link-blame mode.
    #[must_use]
    pub fn with_link_blame(mut self, mode: LinkBlame) -> Self {
        self.link_blame = mode;
        self
    }

    /// Replaces the heartbeat view mode.
    #[must_use]
    pub fn with_heartbeat_views(mut self, mode: ViewMode) -> Self {
        self.heartbeat_views = mode;
        self
    }

    /// Shorthand for the full-view executable-specification mode.
    #[must_use]
    pub fn with_full_views(self) -> Self {
        self.with_heartbeat_views(ViewMode::Full)
    }

    /// The paper-literal parameterization (for ablations): literal
    /// reconciliation, Bayesian correction, timeout-time link blame.
    #[must_use]
    pub fn paper_literal(self) -> Self {
        self.with_reconcile(ReconcileMode::PaperLiteral)
            .with_correction(CorrectionMode::Bayes)
            .with_link_blame(LinkBlame::OnTimeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_values() {
        let p = AdaptiveParams::default();
        assert_eq!(p.target_reliability, 0.9999);
        assert_eq!(p.intervals, 100);
        assert_eq!(p.reconcile, ReconcileMode::SeqGap);
        assert_eq!(p.correction, CorrectionMode::Exact);
        assert_eq!(p.link_blame, LinkBlame::OnTimeout);
        assert_eq!(p.heartbeat_views, ViewMode::Delta);
        assert!(p.timeout_growth);
    }

    #[test]
    fn view_mode_builders() {
        let p = AdaptiveParams::default().with_full_views();
        assert_eq!(p.heartbeat_views, ViewMode::Full);
        let p = p.with_heartbeat_views(ViewMode::Delta);
        assert_eq!(p.heartbeat_views, ViewMode::Delta);
    }

    #[test]
    fn builders_clamp_and_set() {
        let p = AdaptiveParams::default()
            .with_heartbeat_period(0)
            .with_self_tick_period(0)
            .with_timeout_growth(false);
        assert_eq!(p.heartbeat_period, 1);
        assert_eq!(p.self_tick_period, 1);
        assert!(!p.timeout_growth);
    }

    #[test]
    fn paper_literal_combination() {
        let p = AdaptiveParams::default().paper_literal();
        assert_eq!(p.reconcile, ReconcileMode::PaperLiteral);
        assert_eq!(p.correction, CorrectionMode::Bayes);
        assert_eq!(p.link_blame, LinkBlame::OnTimeout);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_intervals_rejected() {
        let _ = AdaptiveParams::default().with_intervals(0);
    }
}

//! Knowledge about the system: exact or approximated `(G, C)`.

use std::sync::Arc;

use diffuse_bayes::Estimate;
use diffuse_graph::maximum_reliability_tree;
use diffuse_model::{Configuration, LinkId, ProcessId, Topology};

use crate::{optimize, CoreError, MessagePlan, ReliabilityTree};

/// A process's knowledge of the system: a topology `G` plus a failure
/// configuration `C`.
///
/// The optimal algorithm is handed an exact `NetworkKnowledge` up front;
/// the adaptive algorithm *approximates* one continuously and snapshots it
/// before each broadcast. Either way, broadcasting is the same two steps
/// (Algorithm 1): build the MRT rooted at the sender, then run
/// `optimize()` on it.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkKnowledge {
    topology: Topology,
    config: Configuration,
}

impl NetworkKnowledge {
    /// Wraps an exact topology and configuration (the optimal algorithm's
    /// full-knowledge assumption).
    pub fn exact(topology: Topology, config: Configuration) -> Self {
        NetworkKnowledge { topology, config }
    }

    /// The known topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The known failure configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Builds the maximum reliability tree rooted at `root` and labels it
    /// with λ values.
    ///
    /// # Errors
    ///
    /// * [`CoreError::KnowledgeIncomplete`] if the known topology does not
    ///   span all known processes (or does not contain `root`);
    /// * any labelling error from [`ReliabilityTree::from_spanning_tree`].
    pub fn reliability_tree(&self, root: ProcessId) -> Result<ReliabilityTree, CoreError> {
        let tree = maximum_reliability_tree(&self.topology, &self.config, root)
            .map_err(|_| CoreError::KnowledgeIncomplete)?;
        ReliabilityTree::from_spanning_tree(&tree, &self.config)
    }

    /// Builds the full broadcast plan for a sender: the MRT plus the
    /// per-link message counts reaching everyone with probability `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkKnowledge::reliability_tree`] and
    /// [`optimize`] errors.
    pub fn broadcast_plan(
        &self,
        root: ProcessId,
        k: f64,
    ) -> Result<(ReliabilityTree, MessagePlan), CoreError> {
        let tree = self.reliability_tree(root)?;
        let plan = optimize(&tree, k)?;
        Ok((tree, plan))
    }
}

/// A gossiped snapshot of one process's `(Λ_k, C_k)` view, carried inside
/// heartbeats.
///
/// Estimates are stored as *sorted vectors* so receivers can merge-join
/// them against their own ordered maps in linear time. Each entry is an
/// `Arc<Estimate>` (with copy-on-write belief vectors inside), so the
/// sender's cached view and every per-neighbor [`DeltaView`] assembled
/// from it share one allocation per entry instead of cloning estimates
/// twice per emission. The topology is behind an [`Arc`] with a version
/// counter: receivers skip re-merging a topology they have already
/// merged.
///
/// Under delta heartbeats the sender keeps one cached `Arc<View>` and
/// rebuilds it copy-on-write per emission, stamping each emission with a
/// monotone [`generation`](View::generation); receivers acknowledge the
/// generation they last merged, which is what lets later heartbeats
/// carry only a [`DeltaView`] of the entries changed since.
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    /// The sender's emission counter at the time this view was snapshot.
    ///
    /// Receivers echo the last merged generation back to the sender
    /// (piggybacked on their own heartbeats), anchoring the base of
    /// future [`DeltaView`]s.
    pub generation: u64,
    /// Incremented by the sender whenever its `Λ_k` changes.
    pub topology_version: u64,
    /// The sender's known topology.
    pub topology: Arc<Topology>,
    /// Process estimates, sorted by process id.
    pub processes: Vec<(ProcessId, Arc<Estimate>)>,
    /// Link estimates, sorted by link id.
    pub links: Vec<(LinkId, Arc<Estimate>)>,
}

impl View {
    /// Looks up the estimate for a process (binary search).
    pub fn process_estimate(&self, p: ProcessId) -> Option<&Estimate> {
        self.processes
            .binary_search_by_key(&p, |(id, _)| *id)
            .ok()
            .map(|i| self.processes[i].1.as_ref())
    }

    /// Looks up the estimate for a link (binary search).
    pub fn link_estimate(&self, l: LinkId) -> Option<&Estimate> {
        self.links
            .binary_search_by_key(&l, |(id, _)| *id)
            .ok()
            .map(|i| self.links[i].1.as_ref())
    }

    /// Approximate encoded size in bytes, for bandwidth accounting: the
    /// paper reports 50 KB heartbeats for 100 processes with `U = 100`.
    pub fn wire_size(&self) -> usize {
        let estimate_size = |e: &Estimate| e.beliefs().intervals() * 8 + 8;
        8 + self.topology.link_count() * 8
            + self
                .processes
                .iter()
                .map(|(_, e)| 4 + estimate_size(e))
                .sum::<usize>()
            + self
                .links
                .iter()
                .map(|(_, e)| 8 + estimate_size(e))
                .sum::<usize>()
    }
}

/// The changed-entry payload of a delta heartbeat: the estimates whose
/// version moved since the receiver's last acknowledged merge.
///
/// A delta is **cumulative since its base**: it carries the *current*
/// value of every entry that changed in the generation window
/// `(base, generation]`, where `base` is the latest generation the
/// receiver acknowledged to the sender. A receiver whose last merged
/// generation is `g ≥ base` can therefore always apply it (entries
/// already merged are re-applied idempotently), and a lost delta merely
/// widens the next one instead of wedging convergence. Deltas never
/// carry topology: any `Λ_k` change switches the sender back to a full
/// [`View`] until the receiver acknowledges it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaView {
    /// The sender's emission counter at this emission.
    pub generation: u64,
    /// The acknowledged generation this delta extends: entries changed
    /// in `(base, generation]` are included.
    pub base: u64,
    /// The sender's topology version — unchanged, by construction, since
    /// the full view the receiver acknowledged.
    pub topology_version: u64,
    /// Changed process estimates, sorted by process id. Entries are
    /// [`Arc`]-shared with the sender's cached [`View`].
    pub processes: Vec<(ProcessId, Arc<Estimate>)>,
    /// Changed link estimates, sorted by link id. Entries are
    /// [`Arc`]-shared with the sender's cached [`View`].
    pub links: Vec<(LinkId, Arc<Estimate>)>,
}

impl DeltaView {
    /// Looks up the changed estimate for a process (binary search).
    pub fn process_estimate(&self, p: ProcessId) -> Option<&Estimate> {
        self.processes
            .binary_search_by_key(&p, |(id, _)| *id)
            .ok()
            .map(|i| self.processes[i].1.as_ref())
    }

    /// Looks up the changed estimate for a link (binary search).
    pub fn link_estimate(&self, l: LinkId) -> Option<&Estimate> {
        self.links
            .binary_search_by_key(&l, |(id, _)| *id)
            .ok()
            .map(|i| self.links[i].1.as_ref())
    }

    /// Approximate encoded size in bytes (same accounting as
    /// [`View::wire_size`], minus the topology section deltas never
    /// carry).
    pub fn wire_size(&self) -> usize {
        let estimate_size = |e: &Estimate| e.beliefs().intervals() * 8 + 8;
        24 + self
            .processes
            .iter()
            .map(|(_, e)| 4 + estimate_size(e))
            .sum::<usize>()
            + self
                .links
                .iter()
                .map(|(_, e)| 8 + estimate_size(e))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_bayes::Distortion;
    use diffuse_model::Probability;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn diamond_knowledge() -> NetworkKnowledge {
        // 0-1, 0-2, 1-3, 2-3 with one bad path.
        let mut g = Topology::new();
        g.add_link(p(0), p(1)).unwrap();
        g.add_link(p(0), p(2)).unwrap();
        g.add_link(p(1), p(3)).unwrap();
        g.add_link(p(2), p(3)).unwrap();
        let mut c = Configuration::uniform(&g, Probability::ZERO, Probability::new(0.05).unwrap());
        c.set_loss(
            LinkId::new(p(2), p(3)).unwrap(),
            Probability::new(0.6).unwrap(),
        );
        NetworkKnowledge::exact(g, c)
    }

    #[test]
    fn reliability_tree_prefers_good_paths() {
        let k = diamond_knowledge();
        let tree = k.reliability_tree(p(0)).unwrap();
        assert_eq!(tree.root(), p(0));
        // p3 must be reached through p1, not the 60%-loss link from p2.
        assert_eq!(tree.tree().parent(p(3)), Some(p(1)));
    }

    #[test]
    fn broadcast_plan_meets_target() {
        let k = diamond_knowledge();
        let (tree, plan) = k.broadcast_plan(p(0), 0.999).unwrap();
        assert_eq!(tree.link_count(), 3);
        assert!(plan.reach() >= 0.999);
        assert!(plan.total_messages() >= 3);
    }

    #[test]
    fn disconnected_knowledge_is_incomplete() {
        let mut g = Topology::new();
        g.add_link(p(0), p(1)).unwrap();
        g.add_process(p(2));
        let k = NetworkKnowledge::exact(g, Configuration::new());
        assert!(matches!(
            k.reliability_tree(p(0)),
            Err(CoreError::KnowledgeIncomplete)
        ));
        assert!(matches!(
            k.broadcast_plan(p(9), 0.9),
            Err(CoreError::KnowledgeIncomplete)
        ));
    }

    #[test]
    fn view_lookup_and_size() {
        let mut topo = Topology::new();
        topo.add_link(p(0), p(1)).unwrap();
        let link = LinkId::new(p(0), p(1)).unwrap();
        let view = View {
            generation: 1,
            topology_version: 1,
            topology: Arc::new(topo),
            processes: vec![
                (p(0), Arc::new(Estimate::first_hand(10))),
                (p(1), Arc::new(Estimate::unknown(10))),
            ],
            links: vec![(link, Arc::new(Estimate::first_hand(10)))],
        };
        assert_eq!(
            view.process_estimate(p(0)).unwrap().distortion(),
            Distortion::ZERO
        );
        assert!(view.process_estimate(p(9)).is_none());
        assert!(view.link_estimate(link).is_some());
        assert!(view
            .link_estimate(LinkId::new(p(1), p(2)).unwrap())
            .is_none());
        assert!(view.wire_size() > 3 * 80);
    }

    #[test]
    fn delta_view_lookup_and_size() {
        let link = LinkId::new(p(0), p(1)).unwrap();
        let delta = DeltaView {
            generation: 7,
            base: 5,
            topology_version: 2,
            processes: vec![(p(1), Arc::new(Estimate::first_hand(10)))],
            links: vec![(link, Arc::new(Estimate::unknown(10)))],
        };
        assert!(delta.process_estimate(p(1)).is_some());
        assert!(delta.process_estimate(p(0)).is_none());
        assert!(delta.link_estimate(link).is_some());
        assert!(delta
            .link_estimate(LinkId::new(p(1), p(2)).unwrap())
            .is_none());
        // Two U=10 estimates: well under a same-shape full view with a
        // topology section, well over the bare header.
        assert!(delta.wire_size() > 2 * 80);
        assert!(delta.wire_size() < 300);
    }
}

//! The reference gossip algorithm (Section 5).
//!
//! "Our results were compared to a reference algorithm, implementing a
//! typical gossip-based reliable broadcast. The execution proceeds in
//! steps, and in each step processes forward data messages to their
//! neighbors. […] As a simple optimization, processes acknowledge the
//! receipt of data messages. Thus, when choosing the neighbors to which
//! some data message m will be forwarded, each process p never forwards m
//! to its neighbor q if (a) it has previously received m from q, or (b) it
//! has received an acknowledgment message from q for m."

use std::collections::{BTreeMap, BTreeSet};

use diffuse_model::ProcessId;
use diffuse_sim::{SimTime, TimerId};

use crate::protocol::{Actions, BroadcastId, Event, GossipMessage, Message, Payload, Protocol};
use crate::CoreError;

/// A set of neighbors, one bit per position in the node's neighbor list.
///
/// The per-tick forwarding loop is the Monte-Carlo hot path: every active
/// broadcast scans every neighbor on every step. Word-level bit tests
/// replace the `BTreeSet` lookups of the naive transcription, and the
/// combined exclusion mask (`received | acked`) lets the scan skip whole
/// words of suppressed neighbors at once.
#[derive(Debug, Clone, Default)]
struct NeighborBits(Vec<u64>);

impl NeighborBits {
    fn for_neighbors(count: usize) -> Self {
        NeighborBits(vec![0; count.div_ceil(64)])
    }

    fn insert(&mut self, position: usize) {
        self.0[position / 64] |= 1 << (position % 64);
    }
}

/// Per-broadcast forwarding state.
#[derive(Debug, Clone)]
struct GossipState {
    payload: Payload,
    /// Neighbors this message was received from (exclusion rule a).
    received_from: NeighborBits,
    /// Neighbors that acknowledged this message (exclusion rule b).
    acked_by: NeighborBits,
    /// Forwarding steps left before this entry goes quiet.
    remaining_steps: u32,
}

/// The reference gossip protocol: step-based flooding with ACK
/// suppression.
///
/// `steps` bounds how many ticks each process keeps forwarding a message
/// after first receiving it; the paper chose it "interactively" so that
/// all processes are reached with probability 0.9999 — the experiment
/// harness calibrates it by Monte-Carlo search
/// (`diffuse-experiments::calibrate_gossip_steps`).
#[derive(Debug)]
pub struct ReferenceGossip {
    id: ProcessId,
    neighbors: Vec<ProcessId>,
    /// `(neighbor, position)` sorted by neighbor id, for O(log n)
    /// sender-to-bit-position lookups on receipt.
    neighbor_positions: Vec<(ProcessId, u32)>,
    steps: u32,
    /// Ticks per forwarding step (see [`ReferenceGossip::with_step_period`]).
    step_period: u64,
    next_seq: u64,
    active: BTreeMap<BroadcastId, GossipState>,
    delivered: Vec<(BroadcastId, Payload)>,
    /// Ids in `delivered`, for O(log n) duplicate checks.
    delivered_ids: BTreeSet<BroadcastId>,
    /// Data copies this process has pushed to the network.
    data_sent: u64,
    /// ACKs this process has pushed to the network.
    acks_sent: u64,
    /// Deadline of the pending [`ReferenceGossip::STEP`] timer, if any —
    /// armed only while `active` is non-empty, so an idle gossip node
    /// costs its driver nothing.
    step_timer_at: Option<SimTime>,
}

impl ReferenceGossip {
    /// The forwarding-round timer: armed at the next step-aligned tick
    /// whenever broadcasts are active, silent otherwise.
    pub const STEP: TimerId = TimerId::new(0);

    /// Creates a gossip node with the given direct neighbors and
    /// forwarding step budget.
    pub fn new(id: ProcessId, neighbors: Vec<ProcessId>, steps: u32) -> Self {
        let mut neighbor_positions: Vec<(ProcessId, u32)> = neighbors
            .iter()
            .enumerate()
            .map(|(position, &q)| (q, position as u32))
            .collect();
        neighbor_positions.sort_unstable();
        ReferenceGossip {
            id,
            neighbors,
            neighbor_positions,
            steps,
            step_period: 1,
            next_seq: 0,
            active: BTreeMap::new(),
            delivered: Vec::new(),
            delivered_ids: BTreeSet::new(),
            data_sent: 0,
            acks_sent: 0,
            step_timer_at: None,
        }
    }

    /// Bit position of a neighbor, or `None` for a non-neighbor sender
    /// (nothing is ever forwarded to those, so no bit is needed).
    fn neighbor_position(&self, q: ProcessId) -> Option<usize> {
        self.neighbor_positions
            .binary_search_by_key(&q, |&(id, _)| id)
            .ok()
            .map(|i| self.neighbor_positions[i].1 as usize)
    }

    /// The forwarding step budget per message.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Stretches one forwarding step over `ticks` clock ticks (clamped to
    /// at least 1).
    ///
    /// With a one-tick message latency, a period of 2 lets data *and* its
    /// acknowledgement land between forwarding rounds — the paper's notion
    /// of a step (forward, receive, acknowledge) — so senders do not
    /// retransmit while an ACK is still in flight.
    #[must_use]
    pub fn with_step_period(mut self, ticks: u64) -> Self {
        self.step_period = ticks.max(1);
        self
    }

    /// Data copies sent so far by this process.
    pub fn data_sent(&self) -> u64 {
        self.data_sent
    }

    /// Acknowledgements sent so far by this process.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Returns `true` iff this process delivered the given broadcast.
    pub fn has_delivered(&self, id: BroadcastId) -> bool {
        self.delivered_ids.contains(&id)
    }

    fn start_state(
        &mut self,
        id: BroadcastId,
        payload: Payload,
        remaining_steps: u32,
    ) -> &mut GossipState {
        let state = GossipState {
            payload,
            received_from: NeighborBits::for_neighbors(self.neighbors.len()),
            acked_by: NeighborBits::for_neighbors(self.neighbors.len()),
            remaining_steps,
        };
        self.active.entry(id).or_insert(state)
    }

    fn record_delivery(&mut self, id: BroadcastId, payload: Payload) {
        self.delivered.push((id, payload));
        self.delivered_ids.insert(id);
    }

    /// Arms [`Self::STEP`] at the next step-aligned tick (at or after
    /// `now`) if broadcasts are active and no earlier wake is pending.
    fn arm_step(&mut self, now: SimTime, actions: &mut Actions) {
        if self.active.is_empty() {
            return;
        }
        let at = SimTime::new(now.ticks().div_ceil(self.step_period) * self.step_period);
        if self.step_timer_at.is_some_and(|pending| pending <= at) {
            return;
        }
        self.step_timer_at = Some(at);
        actions.set_timer(Self::STEP, at);
    }

    /// One forwarding round (the body of the legacy per-tick handler):
    /// every active broadcast pushes a copy to each un-suppressed
    /// neighbor and burns one step; exhausted entries are retired.
    fn forward_round(&mut self, actions: &mut Actions) {
        let mut finished = Vec::new();
        for (&id, state) in self.active.iter_mut() {
            if state.remaining_steps == 0 {
                finished.push(id);
                continue;
            }
            state.remaining_steps -= 1;
            // Walk the un-suppressed frontier word by word; ascending bit
            // positions preserve the neighbor-list send order (and with
            // it the deterministic simulation streams).
            for (word_index, (&received, &acked)) in state
                .received_from
                .0
                .iter()
                .zip(state.acked_by.0.iter())
                .enumerate()
            {
                let mut free = !(received | acked);
                if word_index == self.neighbors.len() / 64 {
                    // Mask the padding bits past the last neighbor.
                    free &= (1u64 << (self.neighbors.len() % 64)) - 1;
                }
                while free != 0 {
                    let position = word_index * 64 + free.trailing_zeros() as usize;
                    free &= free - 1;
                    actions.send(
                        self.neighbors[position],
                        Message::Gossip(GossipMessage {
                            id,
                            payload: state.payload.clone(),
                            ttl: state.remaining_steps,
                        }),
                    );
                    self.data_sent += 1;
                }
            }
        }
        for id in finished {
            self.active.remove(&id);
        }
    }

    /// [`Self::STEP`] handler: forward on step-aligned ticks, otherwise
    /// (woken off-phase, e.g. deferred across an outage) re-align.
    fn on_step_timer(&mut self, now: SimTime, actions: &mut Actions) {
        self.step_timer_at = None;
        if now.ticks() % self.step_period == 0 {
            self.forward_round(actions);
            if !self.active.is_empty() {
                let next = now + self.step_period;
                self.step_timer_at = Some(next);
                actions.set_timer(Self::STEP, next);
            }
        } else {
            self.arm_step(now, actions);
        }
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ProcessId,
        message: Message,
        actions: &mut Actions,
    ) {
        match message {
            Message::Gossip(data) => {
                // Acknowledge every received copy; with lossy links a
                // single ACK could vanish and stall suppression forever.
                actions.send(from, Message::Ack { id: data.id });
                self.acks_sent += 1;
                let position = self.neighbor_position(from);
                match self.active.get_mut(&data.id) {
                    Some(state) => {
                        if let Some(position) = position {
                            state.received_from.insert(position);
                        }
                    }
                    None => {
                        if self.has_delivered(data.id) {
                            return; // already completed its step budget
                        }
                        self.record_delivery(data.id, data.payload.clone());
                        actions.deliver(data.id, data.payload.clone());
                        // The copy's TTL says how many global steps remain.
                        let state = self.start_state(data.id, data.payload, data.ttl);
                        if let Some(position) = position {
                            state.received_from.insert(position);
                        }
                    }
                }
            }
            Message::Ack { id } => {
                let position = self.neighbor_position(from);
                if let (Some(state), Some(position)) = (self.active.get_mut(&id), position) {
                    state.acked_by.insert(position);
                }
            }
            _ => {}
        }
        // A first receipt may have activated a broadcast: make sure a
        // forwarding round is scheduled.
        self.arm_step(now, actions);
    }
}

impl Protocol for ReferenceGossip {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, now: SimTime, event: Event, actions: &mut Actions) {
        match event {
            Event::Message { from, message } => self.on_message(now, from, message, actions),
            Event::Timer(Self::STEP) => self.on_step_timer(now, actions),
            Event::Timer(_) | Event::Recovery { .. } | Event::Corrupt { .. } => {}
            Event::Broadcast(payload) => {
                let _ = self.broadcast(now, payload, actions);
            }
        }
    }

    fn broadcast(
        &mut self,
        now: SimTime,
        payload: Payload,
        actions: &mut Actions,
    ) -> Result<BroadcastId, CoreError> {
        let id = BroadcastId {
            origin: self.id,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.record_delivery(id, payload.clone());
        actions.deliver(id, payload.clone());
        let steps = self.steps;
        self.start_state(id, payload, steps);
        self.arm_step(now, actions);
        Ok(id)
    }

    fn delivered(&self) -> &[(BroadcastId, Payload)] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::protocol::LegacyTickShim;

    fn shim(node: ReferenceGossip) -> LegacyTickShim<ReferenceGossip> {
        LegacyTickShim::new(node)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn data(id: BroadcastId) -> Message {
        data_with_ttl(id, 3)
    }

    fn data_with_ttl(id: BroadcastId, ttl: u32) -> Message {
        Message::Gossip(GossipMessage {
            id,
            payload: Payload::from("x"),
            ttl,
        })
    }

    #[test]
    fn broadcast_floods_on_following_ticks() {
        let mut node = shim(ReferenceGossip::new(p(0), vec![p(1), p(2)], 2));
        let mut actions = Actions::new();
        let id = node
            .broadcast(SimTime::ZERO, Payload::from("x"), &mut actions)
            .unwrap();
        // Broadcast itself sends nothing; forwarding happens on ticks.
        assert!(actions.sends().is_empty());
        assert_eq!(actions.deliveries().len(), 1);

        let mut tick1 = Actions::new();
        node.handle_tick(SimTime::new(1), &mut tick1);
        assert_eq!(tick1.sends().len(), 2); // both neighbors

        let mut tick2 = Actions::new();
        node.handle_tick(SimTime::new(2), &mut tick2);
        assert_eq!(tick2.sends().len(), 2); // no acks yet → keep pushing

        // Step budget exhausted.
        let mut tick3 = Actions::new();
        node.handle_tick(SimTime::new(3), &mut tick3);
        assert!(tick3.sends().is_empty());
        assert_eq!(node.protocol().data_sent(), 4);
        assert!(node.protocol().has_delivered(id));
    }

    #[test]
    fn receipt_triggers_ack_delivery_and_forwarding() {
        let mut node = shim(ReferenceGossip::new(p(1), vec![p(0), p(2)], 3));
        let id = BroadcastId {
            origin: p(0),
            seq: 0,
        };
        let mut actions = Actions::new();
        node.handle_message(SimTime::new(1), p(0), data(id), &mut actions);
        // ACK back to the sender, delivery, no immediate forward.
        assert_eq!(actions.sends().len(), 1);
        assert!(matches!(actions.sends()[0], (to, Message::Ack { .. }) if to == p(0)));
        assert_eq!(node.protocol().delivered().len(), 1);
        assert_eq!(node.protocol().acks_sent(), 1);

        // Next tick: forwards only to p2 (rule a excludes p0).
        let mut tick = Actions::new();
        node.handle_tick(SimTime::new(2), &mut tick);
        let targets: Vec<ProcessId> = tick.sends().iter().map(|(to, _)| *to).collect();
        assert_eq!(targets, vec![p(2)]);
    }

    #[test]
    fn duplicate_receipt_is_acked_but_not_redelivered() {
        let mut node = shim(ReferenceGossip::new(p(1), vec![p(0), p(2)], 3));
        let id = BroadcastId {
            origin: p(0),
            seq: 0,
        };
        let mut a1 = Actions::new();
        node.handle_message(SimTime::new(1), p(0), data(id), &mut a1);
        let mut a2 = Actions::new();
        node.handle_message(SimTime::new(1), p(2), data(id), &mut a2);
        assert_eq!(node.protocol().delivered().len(), 1);
        assert_eq!(a2.sends().len(), 1); // the ack
        assert!(a2.deliveries().is_empty());

        // Both neighbors are now sources → nothing left to forward to.
        let mut tick = Actions::new();
        node.handle_tick(SimTime::new(2), &mut tick);
        assert!(tick.sends().is_empty());
    }

    #[test]
    fn acks_suppress_forwarding() {
        let mut node = shim(ReferenceGossip::new(p(0), vec![p(1), p(2)], 5));
        let mut actions = Actions::new();
        let id = node
            .broadcast(SimTime::ZERO, Payload::from("x"), &mut actions)
            .unwrap();
        node.handle_message(SimTime::new(1), p(1), Message::Ack { id }, &mut actions);

        let mut tick = Actions::new();
        node.handle_tick(SimTime::new(1), &mut tick);
        let targets: Vec<ProcessId> = tick.sends().iter().map(|(to, _)| *to).collect();
        assert_eq!(targets, vec![p(2)]); // p1 suppressed by its ack
    }

    #[test]
    fn received_ttl_bounds_forwarding() {
        // A copy arriving with ttl = 0 is delivered but never forwarded:
        // the global step budget is exhausted.
        let mut node = shim(ReferenceGossip::new(p(1), vec![p(0), p(2)], 9));
        let id = BroadcastId {
            origin: p(0),
            seq: 0,
        };
        let mut a = Actions::new();
        node.handle_message(SimTime::new(1), p(0), data_with_ttl(id, 0), &mut a);
        assert_eq!(node.protocol().delivered().len(), 1);
        let mut tick = Actions::new();
        node.handle_tick(SimTime::new(2), &mut tick);
        assert!(tick.sends().is_empty());
    }

    #[test]
    fn late_duplicates_after_completion_do_not_restart() {
        let mut node = shim(ReferenceGossip::new(p(1), vec![p(0)], 1));
        let id = BroadcastId {
            origin: p(0),
            seq: 0,
        };
        let mut a = Actions::new();
        node.handle_message(SimTime::new(1), p(0), data_with_ttl(id, 1), &mut a);
        node.handle_tick(SimTime::new(2), &mut a); // consumes the only step
        node.handle_tick(SimTime::new(3), &mut a); // cleans up state

        let mut late = Actions::new();
        node.handle_message(SimTime::new(4), p(0), data(id), &mut late);
        // Acked, but not redelivered and not reactivated.
        assert_eq!(late.sends().len(), 1);
        assert!(late.deliveries().is_empty());
        let mut tick = Actions::new();
        node.handle_tick(SimTime::new(5), &mut tick);
        assert!(tick.sends().is_empty());
    }

    #[test]
    fn broadcast_event_behaves_like_broadcast_call() {
        // Event::Broadcast is the fire-and-forget entry point drivers
        // without a return channel use; it must match broadcast().
        let mut node = shim(ReferenceGossip::new(p(0), vec![p(1)], 2));
        let mut actions = Actions::new();
        node.protocol_mut().on_event(
            SimTime::ZERO,
            Event::Broadcast(Payload::from("fire-and-forget")),
            &mut actions,
        );
        assert_eq!(actions.deliveries().len(), 1);
        assert_eq!(node.protocol().delivered().len(), 1);
        // The step timer was armed through the same path.
        assert!(actions
            .timer_ops()
            .iter()
            .any(|&(t, at)| t == ReferenceGossip::STEP && at.is_some()));
    }

    #[test]
    fn ack_for_unknown_broadcast_is_ignored() {
        let mut node = ReferenceGossip::new(p(0), vec![p(1)], 2);
        let mut actions = Actions::new();
        node.handle_message(
            SimTime::new(1),
            p(1),
            Message::Ack {
                id: BroadcastId {
                    origin: p(9),
                    seq: 3,
                },
            },
            &mut actions,
        );
        assert!(actions.is_empty());
    }
}

//! The `reach` function (Eq. 1 and Eq. 2 of the paper).

use diffuse_model::ProcessId;

use crate::ReliabilityTree;

/// Per-link message counts `m⃗`, indexed by tree link index.
///
/// `m⃗[j]` is the number of copies of the broadcast message that cross the
/// tree link leading to process `p_j`. The paper's optimization starts
/// from the all-ones vector and increments entries greedily.
///
/// # Example
///
/// ```
/// use diffuse_core::MessageVector;
///
/// let mut m = MessageVector::ones(3);
/// m.increment(1);
/// assert_eq!(m.counts(), &[1, 2, 1]);
/// assert_eq!(m.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageVector(Vec<u32>);

impl MessageVector {
    /// The paper's initial minimal solution `(1, 1, …, 1)`.
    pub fn ones(links: usize) -> Self {
        MessageVector(vec![1; links])
    }

    /// Builds a vector from explicit counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        MessageVector(counts)
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty vector (singleton tree).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Count for link index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> u32 {
        self.0[j]
    }

    /// All counts, by link index.
    pub fn counts(&self) -> &[u32] {
        &self.0
    }

    /// Adds one message to link index `j` (the greedy step `m⃗ + u⃗_j`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn increment(&mut self, j: usize) {
        self.0[j] += 1;
    }

    /// Total messages `c(m⃗) = Σ_j m⃗[j]` — the paper's cost function.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&m| m as u64).sum()
    }
}

/// Probability that at least one of `m` transmissions with per-copy
/// failure probability `lambda` gets through: `1 - λ^m`.
pub fn link_success(lambda: f64, m: u32) -> f64 {
    1.0 - lambda.powi(m as i32)
}

/// The `reach` function in its iterative form (Eq. 2):
/// `reach(T, m⃗) = Π_j (1 - λ_j^{m⃗[j]})`.
///
/// # Panics
///
/// Panics if `m.len() != tree.link_count()`.
pub fn reach(tree: &ReliabilityTree, m: &MessageVector) -> f64 {
    assert_eq!(
        m.len(),
        tree.link_count(),
        "message vector must cover every tree link"
    );
    tree.lambdas()
        .iter()
        .zip(m.counts())
        .map(|(&lambda, &mj)| link_success(lambda, mj))
        .product()
}

/// The `reach` function in its recursive form (Eq. 1), computed by
/// walking the subtree rooted at `root`.
///
/// For the whole tree call it with `tree.root()`; the paper's
/// `reach(T_i, m⃗_i)` for a subtree corresponds to passing that subtree's
/// root. Leaves yield 1 (`reach(⊥, 0⃗) = 1`).
///
/// Exists alongside [`reach`] to mirror the paper faithfully and to
/// cross-check the two forms in tests; both always agree.
///
/// # Panics
///
/// Panics if `m.len() != tree.link_count()` or `root` is not in the tree.
pub fn reach_recursive(tree: &ReliabilityTree, m: &MessageVector, root: ProcessId) -> f64 {
    assert_eq!(
        m.len(),
        tree.link_count(),
        "message vector must cover every tree link"
    );
    assert!(
        tree.tree().contains(root),
        "reach_recursive root must be in the tree"
    );
    let mut product = 1.0;
    // Π over direct subtrees T_j ∈ S_root.
    for &child in tree.children(root) {
        let j = tree
            .index_of(child)
            .expect("children always have a link index");
        product *= link_success(tree.lambda(j), m.get(j)) * reach_recursive(tree, m, child);
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{chain_tree, star_tree, tree_with_lambdas};

    #[test]
    fn message_vector_basics() {
        let m = MessageVector::ones(0);
        assert!(m.is_empty());
        assert_eq!(m.total(), 0);

        let mut m = MessageVector::from_counts(vec![2, 1, 3]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(2), 3);
        m.increment(0);
        assert_eq!(m.counts(), &[3, 1, 3]);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn link_success_formula() {
        assert_eq!(link_success(0.0, 1), 1.0);
        assert_eq!(link_success(1.0, 5), 0.0);
        assert!((link_success(0.5, 3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn reach_on_single_link() {
        let tree = chain_tree(&[0.2]);
        let m = MessageVector::ones(1);
        assert!((reach(&tree, &m) - 0.8).abs() < 1e-12);
        let m = MessageVector::from_counts(vec![2]);
        assert!((reach(&tree, &m) - 0.96).abs() < 1e-12);
    }

    #[test]
    fn reach_multiplies_across_links() {
        // Chain of three links with distinct λ.
        let tree = chain_tree(&[0.1, 0.2, 0.3]);
        let m = MessageVector::ones(3);
        assert!((reach(&tree, &m) - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn recursive_equals_iterative_on_chain_and_star() {
        for tree in [chain_tree(&[0.1, 0.2, 0.3]), star_tree(&[0.05, 0.5, 0.9])] {
            let m = MessageVector::from_counts(vec![1, 2, 3]);
            let a = reach(&tree, &m);
            let b = reach_recursive(&tree, &m, tree.root());
            assert!((a - b).abs() < 1e-12, "iterative {a} recursive {b}");
        }
    }

    #[test]
    fn reach_of_perfect_tree_is_one() {
        let tree = star_tree(&[0.0, 0.0]);
        let m = MessageVector::ones(2);
        assert_eq!(reach(&tree, &m), 1.0);
    }

    #[test]
    fn reach_with_dead_link_is_zero() {
        let tree = chain_tree(&[0.0, 1.0]);
        let m = MessageVector::from_counts(vec![1, 100]);
        assert_eq!(reach(&tree, &m), 0.0);
    }

    #[test]
    fn reach_is_monotone_in_message_counts() {
        let tree = tree_with_lambdas();
        let mut m = MessageVector::ones(tree.link_count());
        let mut last = reach(&tree, &m);
        for j in 0..tree.link_count() {
            m.increment(j);
            let next = reach(&tree, &m);
            assert!(next >= last, "adding a message must not reduce reach");
            last = next;
        }
    }

    #[test]
    #[should_panic(expected = "message vector")]
    fn reach_rejects_wrong_vector_length() {
        let tree = chain_tree(&[0.1, 0.2]);
        let _ = reach(&tree, &MessageVector::ones(1));
    }
}

//! The `reach` function (Eq. 1 and Eq. 2 of the paper).

use diffuse_model::ProcessId;

use crate::ReliabilityTree;

/// Per-link message counts `m⃗`, indexed by tree link index.
///
/// `m⃗[j]` is the number of copies of the broadcast message that cross the
/// tree link leading to process `p_j`. The paper's optimization starts
/// from the all-ones vector and increments entries greedily.
///
/// The total `c(m⃗)` is cached and maintained incrementally, so
/// [`MessageVector::total`] is `O(1)` — the optimizer and the adaptive
/// protocol query it on every planning step.
///
/// # Example
///
/// ```
/// use diffuse_core::MessageVector;
///
/// let mut m = MessageVector::ones(3);
/// m.increment(1);
/// assert_eq!(m.counts(), &[1, 2, 1]);
/// assert_eq!(m.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageVector {
    counts: Vec<u32>,
    /// Cached `Σ_j counts[j]`; kept in sync by every mutation.
    total: u64,
}

impl MessageVector {
    /// The paper's initial minimal solution `(1, 1, …, 1)`.
    pub fn ones(links: usize) -> Self {
        MessageVector {
            counts: vec![1; links],
            total: links as u64,
        }
    }

    /// Builds a vector from explicit counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let total = counts.iter().map(|&m| m as u64).sum();
        MessageVector { counts, total }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` for the empty vector (singleton tree).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Count for link index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> u32 {
        self.counts[j]
    }

    /// All counts, by link index.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Adds one message to link index `j` (the greedy step `m⃗ + u⃗_j`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn increment(&mut self, j: usize) {
        self.counts[j] += 1;
        self.total += 1;
    }

    /// Total messages `c(m⃗) = Σ_j m⃗[j]` — the paper's cost function.
    ///
    /// `O(1)`: reads the cached running sum.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Deterministic `base^exp` by binary exponentiation.
///
/// `f64::powi` documents *non-deterministic precision* (it may differ
/// across platforms and toolchains), which is unacceptable here: every
/// receiver of a wire tree must re-derive bit-identical message plans
/// (Algorithm 1, line 9), and the closed-form waterfilling solver must
/// agree bit-for-bit with the greedy. This fixed square-and-multiply
/// sequence uses only IEEE-754 multiplications, so it is reproducible
/// everywhere — and `O(log exp)`, which the threshold solver relies on to
/// evaluate gains at arbitrary message counts.
pub fn pow_det(base: f64, mut exp: u32) -> f64 {
    let mut acc = 1.0f64;
    let mut square = base;
    while exp > 0 {
        if exp & 1 == 1 {
            acc *= square;
        }
        exp >>= 1;
        if exp > 0 {
            square *= square;
        }
    }
    acc
}

/// Probability that at least one of `m` transmissions with per-copy
/// failure probability `lambda` gets through: `1 - λ^m`.
pub fn link_success(lambda: f64, m: u32) -> f64 {
    1.0 - pow_det(lambda, m)
}

/// The `reach` function in its iterative form (Eq. 2):
/// `reach(T, m⃗) = Π_j (1 - λ_j^{m⃗[j]})`.
///
/// # Panics
///
/// Panics if `m.len() != tree.link_count()`.
pub fn reach(tree: &ReliabilityTree, m: &MessageVector) -> f64 {
    assert_eq!(
        m.len(),
        tree.link_count(),
        "message vector must cover every tree link"
    );
    tree.lambdas()
        .iter()
        .zip(m.counts())
        .map(|(&lambda, &mj)| link_success(lambda, mj))
        .product()
}

/// The `reach` function in its recursive form (Eq. 1), computed by
/// walking the subtree rooted at `root`.
///
/// For the whole tree call it with `tree.root()`; the paper's
/// `reach(T_i, m⃗_i)` for a subtree corresponds to passing that subtree's
/// root. Leaves yield 1 (`reach(⊥, 0⃗) = 1`).
///
/// Exists alongside [`reach`] to mirror the paper faithfully and to
/// cross-check the two forms in tests; both always agree.
///
/// Implemented with an explicit worklist rather than call recursion: the
/// recursion depth of the naive transcription equals the tree height, and
/// a degenerate chain (one process per level) overflows the stack long
/// before realistic system sizes are reached.
///
/// # Panics
///
/// Panics if `m.len() != tree.link_count()` or `root` is not in the tree.
pub fn reach_recursive(tree: &ReliabilityTree, m: &MessageVector, root: ProcessId) -> f64 {
    assert_eq!(
        m.len(),
        tree.link_count(),
        "message vector must cover every tree link"
    );
    assert!(
        tree.tree().contains(root),
        "reach_recursive root must be in the tree"
    );
    // Eq. 1 unfolds to Π over every link of the subtree below `root`:
    // each child contributes `(1 - λ_j^{m_j}) · reach(T_j)`, so walking
    // the subtree once and multiplying the per-link success of every
    // visited child is exactly the recursive product, evaluated
    // iteratively (pre-order) instead of on the call stack.
    let mut product = 1.0;
    let mut stack: Vec<ProcessId> = vec![root];
    while let Some(p) = stack.pop() {
        for &child in tree.children(p) {
            let j = tree
                .index_of(child)
                .expect("children always have a link index");
            product *= link_success(tree.lambda(j), m.get(j));
            stack.push(child);
        }
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{chain_tree, star_tree, tree_with_lambdas};

    #[test]
    fn message_vector_basics() {
        let m = MessageVector::ones(0);
        assert!(m.is_empty());
        assert_eq!(m.total(), 0);

        let mut m = MessageVector::from_counts(vec![2, 1, 3]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(2), 3);
        m.increment(0);
        assert_eq!(m.counts(), &[3, 1, 3]);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn cached_total_tracks_every_mutation() {
        // The O(1) total must stay equal to the freshly-summed counts
        // through construction and increments.
        let mut m = MessageVector::from_counts(vec![4, 1, 9, 2]);
        for j in [0, 2, 2, 3, 1, 0, 2] {
            m.increment(j);
            let fresh: u64 = m.counts().iter().map(|&c| c as u64).sum();
            assert_eq!(m.total(), fresh);
        }
        assert_eq!(MessageVector::ones(5).total(), 5);
        assert_eq!(MessageVector::from_counts(vec![]).total(), 0);
    }

    #[test]
    fn pow_det_matches_naive_products() {
        for base in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let mut naive = 1.0f64;
            for exp in 0..64u32 {
                let fast = pow_det(base, exp);
                assert!(
                    (fast - naive).abs() <= 1e-13 * naive.abs().max(1e-300),
                    "pow_det({base}, {exp}) = {fast}, naive = {naive}"
                );
                naive *= base;
            }
        }
        assert_eq!(pow_det(0.3, 0), 1.0);
        assert_eq!(pow_det(0.3, 1), 0.3);
    }

    #[test]
    fn link_success_formula() {
        assert_eq!(link_success(0.0, 1), 1.0);
        assert_eq!(link_success(1.0, 5), 0.0);
        assert!((link_success(0.5, 3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn reach_on_single_link() {
        let tree = chain_tree(&[0.2]);
        let m = MessageVector::ones(1);
        assert!((reach(&tree, &m) - 0.8).abs() < 1e-12);
        let m = MessageVector::from_counts(vec![2]);
        assert!((reach(&tree, &m) - 0.96).abs() < 1e-12);
    }

    #[test]
    fn reach_multiplies_across_links() {
        // Chain of three links with distinct λ.
        let tree = chain_tree(&[0.1, 0.2, 0.3]);
        let m = MessageVector::ones(3);
        assert!((reach(&tree, &m) - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn recursive_equals_iterative_on_chain_and_star() {
        for tree in [chain_tree(&[0.1, 0.2, 0.3]), star_tree(&[0.05, 0.5, 0.9])] {
            let m = MessageVector::from_counts(vec![1, 2, 3]);
            let a = reach(&tree, &m);
            let b = reach_recursive(&tree, &m, tree.root());
            assert!((a - b).abs() < 1e-12, "iterative {a} recursive {b}");
        }
    }

    #[test]
    fn reach_of_perfect_tree_is_one() {
        let tree = star_tree(&[0.0, 0.0]);
        let m = MessageVector::ones(2);
        assert_eq!(reach(&tree, &m), 1.0);
    }

    #[test]
    fn reach_with_dead_link_is_zero() {
        let tree = chain_tree(&[0.0, 1.0]);
        let m = MessageVector::from_counts(vec![1, 100]);
        assert_eq!(reach(&tree, &m), 0.0);
    }

    #[test]
    fn reach_is_monotone_in_message_counts() {
        let tree = tree_with_lambdas();
        let mut m = MessageVector::ones(tree.link_count());
        let mut last = reach(&tree, &m);
        for j in 0..tree.link_count() {
            m.increment(j);
            let next = reach(&tree, &m);
            assert!(next >= last, "adding a message must not reduce reach");
            last = next;
        }
    }

    #[test]
    fn recursive_survives_a_10k_deep_chain() {
        // Regression: the naive transcription of Eq. 1 recursed once per
        // tree level and overflowed the stack on deep chains. The
        // explicit-worklist form must handle a 10 000-link chain and
        // still agree with the iterative product.
        let lambdas = vec![0.001f64; 10_000];
        let tree = chain_tree(&lambdas);
        let m = MessageVector::ones(tree.link_count());
        let a = reach(&tree, &m);
        let b = reach_recursive(&tree, &m, tree.root());
        assert!((a - b).abs() < 1e-9, "iterative {a} recursive {b}");
        assert!(a > 0.0);
    }

    #[test]
    #[should_panic(expected = "message vector")]
    fn reach_rejects_wrong_vector_length() {
        let tree = chain_tree(&[0.1, 0.2]);
        let _ = reach(&tree, &MessageVector::ones(1));
    }
}

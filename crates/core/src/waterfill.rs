//! Closed-form threshold ("waterfilling") solver for Algorithm 2.
//!
//! The greedy of `optimize.rs` pays one heap operation and one power
//! evaluation per *message increment*, so planning cost scales with the
//! total message count — painful on lossy trees where plans run to many
//! thousands of copies, and exactly the path every adaptive broadcaster
//! re-runs on each belief update (Algorithm 1, line 9).
//!
//! Because the per-link gain `α(λ, m) = (1 − λ^{m+1})/(1 − λ^m)` is
//! non-increasing in `m`, the greedy's first `t` increments are exactly
//! the `t` globally largest gains: every greedy prefix is characterized
//! by a single gain threshold `g`. For any `g > 1` the number of
//! increments of a λ-link with gain above `g` has a closed form
//! (`λ^m > (g−1)/(g−λ)` ⟺ `m < log((g−1)/(g−λ)) / log λ`), so a whole
//! prefix is computable without simulating a single step. The solver
//! binary-searches the threshold and finishes with an exact greedy tail
//! over the boundary increments, so plans are **bit-identical** to the
//! reference greedy:
//!
//! * gains are evaluated by the same pure function (`gain`, built on the
//!   deterministic `pow_det`), so both solvers see the same `f64` values;
//! * the closed-form count is only a log-space *estimate*, always
//!   corrected by walking the exact gain sequence until the strict
//!   `gain > g` boundary is found (including plateaus where consecutive
//!   gains round to the same float);
//! * the bisection's reach predicate is conservative: a prefix is only
//!   classified as falling short of the target when it is short by a
//!   margin far wider than any floating-point discrepancy, so the tail
//!   never *starts* past the optimum — and the tail itself stops on the
//!   same exact-reach predicate as the greedy, with the greedy's own
//!   heap and tie-breaking.
//!
//! Links sharing the same λ are collapsed into classes (uniform-loss
//! configurations collapse to a single class), and `ln λ` is cached per
//! class, so a threshold probe costs `O(classes)` — the whole solve is
//! `O(L log L)` and independent of the total message count.

use crate::optimize::{
    preflight, MessagePlan, Preflight, MAX_INCREMENTS, REACH_EPS, RECOMPUTE_EVERY,
};
use crate::reach::{link_success, pow_det, reach};
use crate::{gain, CoreError, MessageVector, ReliabilityTree};

/// Bisection iteration cap; in practice the count-gap break below fires
/// after a handful of probes. The cap only guards degenerate floats.
const MAX_BISECTIONS: u32 = 128;

/// Stop bisecting once the bracket is known to contain at most this many
/// increments beyond one threshold tie-group: the exact tail is cheaper
/// than further probes.
const TAIL_BUDGET: u64 = 64;

/// Beyond this many distinct λ values the cursor tail's linear winner
/// scans lose to a heap: the tail switches from `O(classes)` scans to a
/// per-class [`std::collections::BinaryHeap`] keyed on the same
/// `(gain, link index)` order, so the advance sequence — and therefore
/// the plan — is bit-identical either way.
const MAX_CURSOR_CLASSES: usize = 32;

/// Conservative classification margin for the bisection's reach
/// predicate. The per-class reach product can differ from the canonical
/// link-ordered product by a few ULPs (~1e-13 relative); classifying a
/// prefix as *failing* only when it is short by this much guarantees the
/// greedy tail never starts beyond the optimum. Borderline prefixes land
/// on the success side, which merely lengthens the (exact) tail.
const CLASS_MARGIN: f64 = 1e-9;

/// Upper clamp for per-link counts while probing thresholds, safely above
/// both `MAX_INCREMENTS` and any count a `u32` vector can hold.
const COUNT_CLAMP: u64 = u32::MAX as u64 - 1;

/// Number of increments of a λ-link whose gain strictly exceeds `g`
/// (requires `g > 1`): `max { m ≥ 1 : α(λ, m) > g }`, or 0 if even the
/// first increment is not worth it.
///
/// `ln_lambda` is the caller-cached `λ.ln()`. A log-space closed form
/// lands within a step or two of the boundary; the exact strict boundary
/// is then found by walking the true gain sequence, so the result is
/// exact with respect to `gain()`'s `f64` values.
fn increments_above(lambda: f64, ln_lambda: f64, g: f64) -> u64 {
    debug_assert!(g > 1.0, "threshold must exceed the neutral gain");
    if lambda <= 0.0 || lambda >= 1.0 {
        return 0; // gain is identically 1: never above g
    }
    // α(λ, m) > g  ⟺  λ^m (g − λ) > g − 1  ⟺  λ^m > (g−1)/(g−λ).
    let t = (g - 1.0) / (g - lambda);
    let est = (t.ln() / ln_lambda).floor();
    let mut m = if est.is_finite() && est > 0.0 {
        (est as u64).min(COUNT_CLAMP)
    } else {
        0
    };
    // Correct the estimate against the exact (rounded) gain sequence.
    while m < COUNT_CLAMP && gain(lambda, (m + 1) as u32) > g {
        m += 1;
    }
    while m > 0 && gain(lambda, m as u32) <= g {
        m -= 1;
    }
    m
}

/// Links grouped by identical λ: a threshold probe is `O(classes)`, and
/// uniform-loss trees (the common fixture) collapse to one class.
struct LambdaClasses {
    /// Distinct λ values.
    lambda: Vec<f64>,
    /// Cached `λ.ln()` per class.
    ln_lambda: Vec<f64>,
    /// Links per class.
    multiplicity: Vec<u32>,
    /// Link index → class index.
    class_of: Vec<u32>,
    /// Link indices per class, ascending — the greedy's tie-break order.
    links: Vec<Vec<u32>>,
}

/// One threshold probe: per-class increment counts, their link-weighted
/// total, and the (class-product) reach of the resulting prefix.
struct Probe {
    above: Vec<u64>,
    total_increments: u64,
    reach: f64,
}

impl LambdaClasses {
    fn build(lambdas: &[f64]) -> Self {
        let mut classes = LambdaClasses {
            lambda: Vec::new(),
            ln_lambda: Vec::new(),
            multiplicity: Vec::new(),
            class_of: vec![0; lambdas.len()],
            links: Vec::new(),
        };
        // Uniform configurations are the common case; skip the sort.
        if lambdas.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()) {
            if let Some(&l) = lambdas.first() {
                classes.lambda.push(l);
                classes.ln_lambda.push(l.ln());
                classes.multiplicity.push(lambdas.len() as u32);
                classes.links.push((0..lambdas.len() as u32).collect());
            }
            return classes;
        }
        let mut order: Vec<u32> = (0..lambdas.len() as u32).collect();
        order.sort_unstable_by_key(|&j| lambdas[j as usize].to_bits());
        for &j in &order {
            let l = lambdas[j as usize];
            if classes.lambda.last().map(|p| p.to_bits()) != Some(l.to_bits()) {
                classes.lambda.push(l);
                classes.ln_lambda.push(l.ln());
                classes.multiplicity.push(0);
            }
            let class = classes.lambda.len() - 1;
            classes.multiplicity[class] += 1;
            classes.class_of[j as usize] = class as u32;
        }
        // Per-class link lists in ascending index order.
        classes.links = vec![Vec::new(); classes.lambda.len()];
        for (j, &class) in classes.class_of.iter().enumerate() {
            classes.links[class as usize].push(j as u32);
        }
        classes
    }

    /// Largest first-increment gain any class offers — the bisection's
    /// upper bracket (its prefix is the all-ones vector).
    fn max_first_gain(&self) -> f64 {
        self.lambda.iter().map(|&l| gain(l, 1)).fold(1.0, f64::max)
    }

    fn probe(&self, g: f64) -> Probe {
        let mut total_increments = 0u64;
        let mut r = 1.0f64;
        let above: Vec<u64> = self
            .lambda
            .iter()
            .zip(&self.ln_lambda)
            .zip(&self.multiplicity)
            .map(|((&lambda, &ln_lambda), &mult)| {
                let m = increments_above(lambda, ln_lambda, g);
                total_increments += m * mult as u64;
                r *= pow_det(
                    link_success(lambda, (1 + m).min(COUNT_CLAMP + 1) as u32),
                    mult,
                );
                m
            })
            .collect();
        Probe {
            above,
            total_increments,
            reach: r,
        }
    }

    /// Expands a probe into the per-link count vector of its prefix.
    fn counts(&self, probe: &Probe) -> MessageVector {
        let counts: Vec<u32> = self
            .class_of
            .iter()
            .map(|&class| (1 + probe.above[class as usize]).min(COUNT_CLAMP + 1) as u32)
            .collect();
        MessageVector::from_counts(counts)
    }

    /// The all-ones probe (threshold at or above every gain).
    fn ones_probe(&self) -> Probe {
        Probe {
            above: vec![0; self.lambda.len()],
            total_increments: 0,
            reach: f64::NAN, // never consulted: preflight proved it short
        }
    }
}

/// Bracket mechanics of the threshold search, shared by the reach-target
/// and exact-count solvers.
///
/// Bisects `u = ln(g − 1)`: per-class counts are roughly linear in `u`,
/// so the bracket's increment gap collapses geometrically instead of by
/// ULPs. Low `u` (g barely above 1) is the many-messages side, high `u`
/// the few-messages side.
struct ThresholdBisection {
    u_lo: f64,
    u_hi: f64,
    mid: f64,
    remaining: u32,
}

impl ThresholdBisection {
    fn new(g_max: f64) -> Self {
        ThresholdBisection {
            u_lo: f64::EPSILON.ln(), // smallest representable g > 1
            u_hi: (g_max - 1.0).max(f64::MIN_POSITIVE).ln(),
            mid: f64::NAN,
            remaining: MAX_BISECTIONS,
        }
    }

    /// The next threshold to probe, or `None` once the bracket is
    /// ULP-tight (or floats degenerate).
    fn next_g(&mut self) -> Option<f64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.mid = 0.5 * (self.u_lo + self.u_hi);
        if self.mid <= self.u_lo || self.mid >= self.u_hi {
            return None;
        }
        let g = 1.0 + self.mid.exp();
        (g > 1.0).then_some(g)
    }

    /// The probed prefix had at least as many increments as needed:
    /// search toward fewer messages.
    fn prefix_sufficient(&mut self) {
        self.u_lo = self.mid;
    }

    /// The probed prefix fell short: search toward more messages.
    fn prefix_short(&mut self) {
        self.u_hi = self.mid;
    }
}

/// The exact greedy prefix after `target` increments: threshold bisection
/// on the increment count, then a heap tail distributing the remainder in
/// greedy order (ties by link index). Stops early if every remaining gain
/// is ≤ 1 (nothing left worth sending).
fn counts_at_total(tree: &ReliabilityTree, target: u64) -> MessageVector {
    let classes = LambdaClasses::build(tree.lambdas());
    let g_max = classes.max_first_gain();
    let mut best = classes.ones_probe();
    if g_max > 1.0 {
        let mut bisection = ThresholdBisection::new(g_max);
        while let Some(g) = bisection.next_g() {
            let probe = classes.probe(g);
            if probe.total_increments > target {
                bisection.prefix_sufficient();
            } else {
                let tail_is_cheap = target - probe.total_increments <= TAIL_BUDGET;
                best = probe;
                bisection.prefix_short();
                if tail_is_cheap {
                    break;
                }
            }
        }
    }
    let mut m = classes.counts(&best);
    let mut taken = best.total_increments;
    // Distribute the boundary remainder exactly as the greedy would.
    let mut heap: std::collections::BinaryHeap<_> = (0..m.len())
        .map(|j| crate::optimize::Candidate::fresh(tree.lambda(j), m.get(j), j))
        .collect();
    while taken < target {
        let Some(best) = heap.pop() else { break };
        if best.gain() <= 1.0 {
            break;
        }
        let j = best.index();
        m.increment(j);
        heap.push(best.successor(tree.lambda(j), m.get(j)));
        taken += 1;
    }
    m
}

/// `O(L log L)` waterfilling form of [`crate::optimize`] (Algorithm 2):
/// binary-searches the gain threshold characterizing the optimal plan and
/// finishes with an exact greedy step over the boundary increments.
///
/// Produces plans **bit-identical** to
/// [`optimize_greedy`](crate::optimize_greedy) — a protocol requirement,
/// since every receiver of a wire tree must re-derive the sender's exact
/// plan — while the cost is independent of the total message count.
///
/// # Errors
///
/// Same contract as [`crate::optimize`].
pub fn optimize_waterfill(tree: &ReliabilityTree, k: f64) -> Result<MessagePlan, CoreError> {
    match preflight(tree, k)? {
        Preflight::Done(plan) => return Ok(plan),
        Preflight::Continue(..) => {}
    }
    let classes = LambdaClasses::build(tree.lambdas());
    let g_max = classes.max_first_gain();

    // Low u is the reaches-the-target side (more messages), high u the
    // falls-short side (fewer). `g_max`'s prefix is the all-ones vector,
    // which preflight just proved falls short; the count-gap break fires
    // after a handful of probes.
    let mut best_short = classes.ones_probe();
    if g_max > 1.0 {
        let tail_budget =
            TAIL_BUDGET + classes.multiplicity.iter().copied().max().unwrap_or(0) as u64;
        let mut bisection = ThresholdBisection::new(g_max);
        let mut success_increments: Option<u64> = None;
        while let Some(g) = bisection.next_g() {
            let probe = classes.probe(g);
            // Conservative split: only clearly-short prefixes go to the
            // fail side (see CLASS_MARGIN).
            if probe.reach + REACH_EPS >= k - CLASS_MARGIN {
                success_increments = Some(probe.total_increments);
                bisection.prefix_sufficient();
            } else {
                best_short = probe;
                bisection.prefix_short();
            }
            if let Some(n) = success_increments {
                if n.saturating_sub(best_short.total_increments) <= tail_budget {
                    break; // the exact tail is cheaper than more probes
                }
            }
        }
    }

    if best_short.total_increments > MAX_INCREMENTS {
        // The greedy would exhaust its increment budget strictly before
        // reaching this prefix; reproduce its exact error state.
        let at_cap = counts_at_total(tree, MAX_INCREMENTS + 1);
        return Err(CoreError::TargetUnreachable {
            best_reach: reach(tree, &at_cap),
        });
    }
    // The boundary tail: the bracket increments, walked in exact greedy
    // order with the greedy's exact-reach stopping rule.
    let m = classes.counts(&best_short);
    class_cursor_tail(
        tree,
        &classes,
        m,
        &best_short.above,
        best_short.total_increments,
        k,
    )
}

/// The boundary tail, specialized to λ-classes: every link of a class at
/// the same count offers the same gain, so the greedy's `(gain, index)`
/// order over the bracket reduces to per-class cursors — the max-gain
/// class advances its current link, cross-class gain ties resolve by
/// that link's index, and each advance costs one multiply instead of a
/// heap rotation.
///
/// Gain *plateaus* (consecutive counts whose gains round to the same
/// `f64`) are handled exactly, not by falling back to the heap: within
/// a plateau every increment of a link re-offers the same top gain, so
/// the heap — popping the smallest index among equals — **drills** the
/// class's lowest-index link through the whole plateau before touching
/// the next link. The cursor models this directly: `links[..drilled]`
/// sit at the plateau's `bottom` count, `links[drilled]` is mid-drill at
/// `cur_count`, and the rest remain at `level`; when every link reaches
/// `bottom` the class rolls to the next (plateau-collapsed) level.
///
/// Past [`MAX_CURSOR_CLASSES`] distinct λ values the winner is selected
/// from a per-class max-heap instead of a linear scan. Each class keeps
/// exactly one live heap entry — its current head `(gain, link)` —
/// popped to advance and re-pushed afterwards (with the possibly-new
/// head) while its gain exceeds 1. The heap's [`ClassHead`] order is the
/// scan's winner predicate verbatim, so both selectors produce the same
/// advance sequence and the same bits.
fn class_cursor_tail(
    tree: &ReliabilityTree,
    classes: &LambdaClasses,
    mut m: MessageVector,
    above: &[u64],
    increments_so_far: u64,
    k: f64,
) -> Result<MessagePlan, CoreError> {
    let mut r = reach(tree, &m);
    if r + REACH_EPS >= k {
        return Ok(MessagePlan::new(m, r));
    }
    struct Cursor {
        /// Count of the class's not-yet-drilled links.
        level: u32,
        /// First count past the current gain plateau: the smallest
        /// `b > level` with `gain(λ, b)` rounding to different bits
        /// than `gain(λ, level)`.
        bottom: u32,
        /// Links already drilled to `bottom` (a prefix in index order).
        drilled: u32,
        /// The mid-drill count of `links[drilled]`, in
        /// `[level, bottom)`.
        cur_count: u32,
        /// The plateau gain `gain(λ, level)` — exactly what every
        /// advance in the plateau yields.
        gain: f64,
    }
    /// First count past the plateau starting at `level` (callers ensure
    /// `g = gain(λ, level) > 1`, so the walk terminates: gains are
    /// non-increasing towards 1).
    fn plateau_bottom(lambda: f64, level: u32, g: f64) -> u32 {
        let mut b = level.saturating_add(1);
        while b < u32::MAX && gain(lambda, b).to_bits() == g.to_bits() {
            b += 1;
        }
        b
    }
    let mut cursors: Vec<Cursor> = classes
        .lambda
        .iter()
        .zip(above)
        .map(|(&lambda, &a)| {
            let level = (1 + a).min(COUNT_CLAMP) as u32;
            let g = gain(lambda, level);
            Cursor {
                level,
                bottom: if g > 1.0 {
                    plateau_bottom(lambda, level, g)
                } else {
                    level + 1
                },
                drilled: 0,
                cur_count: level,
                gain: g,
            }
        })
        .collect();
    /// A class's current head in the many-classes heap: the winner
    /// predicate of the linear scan as a max-heap order — larger gain
    /// first (`total_cmp`, matching the scan's comparator bit-for-bit),
    /// gain ties broken by the *smaller* current link index.
    struct ClassHead {
        gain: f64,
        link: u32,
        class: u32,
    }
    impl Ord for ClassHead {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.gain
                .total_cmp(&other.gain)
                .then_with(|| other.link.cmp(&self.link))
        }
    }
    impl PartialOrd for ClassHead {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for ClassHead {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for ClassHead {}
    let head_of = |cursors: &[Cursor], classes: &LambdaClasses, i: usize| ClassHead {
        gain: cursors[i].gain,
        link: classes.links[i][cursors[i].drilled as usize],
        class: i as u32,
    };
    // One live entry per class with gain > 1; `None` below the class cap
    // (the linear scan is faster there).
    let mut heap: Option<std::collections::BinaryHeap<ClassHead>> =
        (classes.lambda.len() > MAX_CURSOR_CLASSES).then(|| {
            cursors
                .iter()
                .enumerate()
                .filter(|(_, c)| c.gain > 1.0)
                .map(|(i, _)| head_of(&cursors, classes, i))
                .collect()
        });
    let mut increments = increments_so_far;
    let mut trigger = k - REACH_EPS;
    loop {
        let winner: Option<usize> = if let Some(heap) = heap.as_mut() {
            heap.pop().map(|head| head.class as usize)
        } else {
            let mut winner: Option<usize> = None;
            for (i, c) in cursors.iter().enumerate() {
                if c.gain <= 1.0 {
                    continue;
                }
                winner = match winner {
                    None => Some(i),
                    Some(w) => {
                        let cw = &cursors[w];
                        match c.gain.total_cmp(&cw.gain) {
                            std::cmp::Ordering::Greater => Some(i),
                            std::cmp::Ordering::Equal
                                if classes.links[i][c.drilled as usize]
                                    < classes.links[w][cw.drilled as usize] =>
                            {
                                Some(i)
                            }
                            _ => Some(w),
                        }
                    }
                };
            }
            winner
        };
        let Some(w) = winner else {
            // No link can improve the reach any further.
            return Err(CoreError::TargetUnreachable {
                best_reach: reach(tree, &m),
            });
        };
        let lambda = classes.lambda[w];
        let cur = &mut cursors[w];
        let link = classes.links[w][cur.drilled as usize] as usize;
        m.increment(link);
        r *= cur.gain;
        cur.cur_count += 1;
        if cur.cur_count == cur.bottom {
            // This link cleared the plateau; the next one starts
            // drilling from `level`.
            cur.drilled += 1;
            cur.cur_count = cur.level;
            if cur.drilled as usize == classes.links[w].len() {
                // Whole class drilled: roll to the next plateau.
                cur.level = cur.bottom;
                cur.drilled = 0;
                cur.cur_count = cur.level;
                cur.gain = gain(lambda, cur.level);
                if cur.gain > 1.0 {
                    cur.bottom = plateau_bottom(lambda, cur.level, cur.gain);
                }
            }
        }
        if let Some(heap) = heap.as_mut() {
            // Re-offer the class's (possibly new) head; classes whose
            // gain decays to ≤ 1 leave the heap for good — gains are
            // non-increasing, so they can never win again.
            if cursors[w].gain > 1.0 {
                heap.push(head_of(&cursors, classes, w));
            }
        }
        increments += 1;
        if increments % RECOMPUTE_EVERY == 0 {
            r = reach(tree, &m);
        }
        if increments > MAX_INCREMENTS {
            return Err(CoreError::TargetUnreachable {
                best_reach: reach(tree, &m),
            });
        }
        if r >= trigger {
            let exact = reach(tree, &m);
            if exact + REACH_EPS >= k {
                return Ok(MessagePlan::new(m, exact));
            }
            r = exact;
            trigger = exact + (k - REACH_EPS - exact) * 0.5;
        }
    }
}

/// `O(L log L)` waterfilling form of [`crate::optimize_budget`] (Eq. 5):
/// spends exactly `budget` messages (or stops early once no link offers
/// any gain), bit-identical to
/// [`optimize_budget_greedy`](crate::optimize_budget_greedy).
///
/// # Errors
///
/// Same contract as [`crate::optimize_budget`].
pub fn optimize_budget_waterfill(
    tree: &ReliabilityTree,
    budget: u64,
) -> Result<MessagePlan, CoreError> {
    let links = tree.link_count();
    if budget < links as u64 {
        return Err(CoreError::BudgetTooSmall { budget, links });
    }
    let m = counts_at_total(tree, budget - links as u64);
    let r = reach(tree, &m);
    Ok(MessagePlan::new(m, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{chain_tree, star_tree, tree_with_lambdas};
    use crate::{optimize_budget_greedy, optimize_greedy};

    #[test]
    fn increments_above_matches_the_exact_definition() {
        for lambda in [0.05, 0.3, 0.5, 0.9, 0.99] {
            for g in [1.0001, 1.01, 1.1, 1.5, 1.9] {
                let fast = increments_above(lambda, lambda.ln(), g);
                // Exact definition: walk the gain sequence from m = 1.
                let mut slow = 0u64;
                while gain(lambda, (slow + 1) as u32) > g {
                    slow += 1;
                }
                assert_eq!(fast, slow, "λ={lambda}, g={g}");
            }
        }
        assert_eq!(increments_above(0.0, f64::NEG_INFINITY, 1.5), 0);
        assert_eq!(increments_above(1.0, 0.0, 1.5), 0);
    }

    #[test]
    fn classes_group_identical_lambdas() {
        let classes = LambdaClasses::build(&[0.3, 0.1, 0.3, 0.3, 0.1, 0.0]);
        assert_eq!(classes.lambda.len(), 3);
        let total: u32 = classes.multiplicity.iter().sum();
        assert_eq!(total, 6);
        // Every link maps back to its own λ.
        for (j, &l) in [0.3, 0.1, 0.3, 0.3, 0.1, 0.0].iter().enumerate() {
            assert_eq!(classes.lambda[classes.class_of[j] as usize], l);
        }
    }

    #[test]
    fn threshold_prefixes_are_greedy_prefixes() {
        // counts_at_total(t) must equal the greedy's state after exactly
        // t increments, for every t along a real run.
        let tree = tree_with_lambdas();
        let final_plan = optimize_greedy(&tree, 0.99999).unwrap();
        let total = final_plan.total_messages() - tree.link_count() as u64;
        for t in 0..=total {
            let m = counts_at_total(&tree, t);
            assert_eq!(
                m.total(),
                tree.link_count() as u64 + t,
                "prefix at t={t} has the wrong size"
            );
            // A greedy prefix must be dominated by the final plan.
            for j in 0..tree.link_count() {
                assert!(
                    m.get(j) <= final_plan.count(j),
                    "prefix at t={t} overshoots link {j}"
                );
            }
        }
        assert_eq!(counts_at_total(&tree, total), final_plan.vector().clone());
    }

    #[test]
    fn waterfill_matches_greedy_on_the_fixed_matrix() {
        for (tree, k) in [
            (chain_tree(&[0.3, 0.2]), 0.9),
            (chain_tree(&[0.5, 0.5, 0.5]), 0.85),
            (star_tree(&[0.1, 0.4, 0.25]), 0.95),
            (star_tree(&[0.01, 0.5, 0.01]), 0.99),
            (star_tree(&[0.07; 12]), 0.9999),
            (tree_with_lambdas(), 0.9),
            (tree_with_lambdas(), 0.9999),
            (tree_with_lambdas(), 0.999999),
            (chain_tree(&[0.9, 0.9, 0.9, 0.9]), 0.999),
            (star_tree(&[0.0, 0.3, 0.0]), 0.99),
        ] {
            let fast = optimize_waterfill(&tree, k).unwrap();
            let slow = optimize_greedy(&tree, k).unwrap();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn waterfill_matches_greedy_on_heavy_plans() {
        // A lossy chain at an extreme target forces tens of thousands of
        // increments — the regime the threshold solver exists for.
        let tree = chain_tree(&[0.97, 0.5, 0.99, 0.8]);
        let fast = optimize_waterfill(&tree, 0.999999).unwrap();
        let slow = optimize_greedy(&tree, 0.999999).unwrap();
        assert_eq!(fast, slow);
        assert!(fast.total_messages() > 100);
    }

    #[test]
    fn budget_waterfill_matches_greedy_across_budgets() {
        let tree = tree_with_lambdas();
        let links = tree.link_count() as u64;
        for budget in links..links + 2000 {
            let fast = optimize_budget_waterfill(&tree, budget).unwrap();
            let slow = optimize_budget_greedy(&tree, budget).unwrap();
            assert_eq!(fast, slow, "budget={budget}");
        }
    }

    #[test]
    fn budget_waterfill_handles_perfect_and_dead_links() {
        // λ = 0 and λ = 1 links offer no gain; both solvers must park a
        // single message there and stop early.
        for lambdas in [&[0.0, 0.3, 0.0][..], &[1.0, 0.3][..], &[0.0][..]] {
            let tree = star_tree(lambdas);
            for budget in [lambdas.len() as u64, 10, 100] {
                if budget < lambdas.len() as u64 {
                    continue;
                }
                let fast = optimize_budget_waterfill(&tree, budget).unwrap();
                let slow = optimize_budget_greedy(&tree, budget).unwrap();
                assert_eq!(fast, slow, "λ={lambdas:?}, budget={budget}");
            }
        }
    }

    #[test]
    fn cursor_drills_gain_plateaus_bit_identically() {
        // λ → 1 at an extreme target drives per-link counts deep enough
        // that consecutive gains round to the same f64 — the plateau
        // regime that used to force the per-link heap fallback. The
        // cursor must reproduce the heap's drill order exactly.
        let lambdas = [0.99, 0.99, 0.9];
        let k = 1.0 - 1e-12;
        let tree = star_tree(&lambdas);
        let fast = optimize_waterfill(&tree, k).unwrap();
        let slow = optimize_greedy(&tree, k).unwrap();
        assert_eq!(fast, slow);
        // The fixture is not vacuous: somewhere inside the distributed
        // counts two consecutive gains round to the same f64.
        let hit_plateau = (0..tree.link_count()).any(|j| {
            let (lambda, c) = (tree.lambda(j), fast.count(j));
            (1..c).any(|m| gain(lambda, m).to_bits() == gain(lambda, m + 1).to_bits())
        });
        assert!(
            hit_plateau,
            "fixture must exercise a gain plateau: {fast:?}"
        );
    }

    #[test]
    fn cursor_handles_mixed_plateau_classes() {
        // Several identical-λ classes plus a distinct one, deep targets:
        // cross-class ties and within-class drills interleave.
        for (lambdas, k) in [
            (&[0.97, 0.97, 0.5][..], 0.999999999),
            (&[0.995, 0.995, 0.995, 0.995][..], 1.0 - 1e-11),
            (&[0.99, 0.9][..], 1.0 - 1e-12),
        ] {
            let tree = star_tree(lambdas);
            match (optimize_waterfill(&tree, k), optimize_greedy(&tree, k)) {
                (Ok(f), Ok(s)) => assert_eq!(f, s, "λ={lambdas:?} k={k}"),
                (
                    Err(CoreError::TargetUnreachable { best_reach: a }),
                    Err(CoreError::TargetUnreachable { best_reach: b }),
                ) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                other => panic!("solver disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn heap_tail_matches_greedy_past_the_class_cap() {
        // 40 distinct λ values — well past MAX_CURSOR_CLASSES — so the
        // boundary tail runs on the per-class heap, not the linear scan.
        let lambdas: Vec<f64> = (0..40).map(|i| 0.02 + 0.023 * f64::from(i)).collect();
        assert!(
            LambdaClasses::build(&lambdas).lambda.len() > MAX_CURSOR_CLASSES,
            "fixture must exceed the cursor class cap"
        );
        for k in [0.5, 0.9, 0.999] {
            for tree in [star_tree(&lambdas), chain_tree(&lambdas[..34])] {
                let fast = optimize_waterfill(&tree, k).unwrap();
                let slow = optimize_greedy(&tree, k).unwrap();
                assert_eq!(fast, slow, "k={k}");
            }
        }
    }

    proptest::proptest! {
        /// Bit-identity to the reference greedy survives the switch to
        /// the per-class heap: 33+ λ classes drawn from disjoint
        /// intervals (distinctness guaranteed by construction), random
        /// reach targets.
        #[test]
        fn prop_heap_tail_is_bit_identical_past_the_class_cap(
            fracs in proptest::collection::vec(0.05f64..0.95, 33..44),
            k in 0.5f64..0.999999,
        ) {
            let n = fracs.len() as f64;
            let lambdas: Vec<f64> = fracs
                .iter()
                .enumerate()
                .map(|(i, f)| (i as f64 + f) / n)
                .collect();
            let classes = LambdaClasses::build(&lambdas);
            proptest::prop_assert!(classes.lambda.len() > MAX_CURSOR_CLASSES);
            let tree = star_tree(&lambdas);
            match (optimize_waterfill(&tree, k), optimize_greedy(&tree, k)) {
                (Ok(f), Ok(s)) => proptest::prop_assert_eq!(f, s),
                (
                    Err(CoreError::TargetUnreachable { best_reach: a }),
                    Err(CoreError::TargetUnreachable { best_reach: b }),
                ) => proptest::prop_assert_eq!(a.to_bits(), b.to_bits()),
                other => panic!("solver disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn waterfill_error_paths_match_the_greedy() {
        let tree = chain_tree(&[0.1, 1.0]);
        let fast = optimize_waterfill(&tree, 0.9);
        let slow = optimize_greedy(&tree, 0.9);
        match (fast, slow) {
            (
                Err(CoreError::TargetUnreachable { best_reach: a }),
                Err(CoreError::TargetUnreachable { best_reach: b }),
            ) => assert_eq!(a, b),
            other => panic!("expected matching unreachable errors, got {other:?}"),
        }
        assert!(matches!(
            optimize_waterfill(&chain_tree(&[0.1]), 1.5),
            Err(CoreError::InvalidTarget(_))
        ));
    }
}

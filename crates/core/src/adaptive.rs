//! The adaptive probabilistic reliable broadcast (Section 4,
//! Algorithms 3–5).
//!
//! The protocol runs two activities side by side:
//!
//! * the **broadcast activity** — identical to the optimal Algorithm 1,
//!   but fed by the approximated knowledge below;
//! * the **approximation activity** (Algorithm 4) — periodic heartbeats
//!   carrying the local `(Λ_k, C_k)` view, Bayesian updates from observed
//!   receipts/timeouts, and distortion-ranked adoption of remote
//!   estimates (`selectBestEstimate`, Algorithm 3).
//!
//! If the system's topology and failure probabilities remain stable long
//! enough, every process's view converges to the real `(G, C)` and the
//! broadcast activity's message counts coincide with the optimal
//! algorithm's — the paper's Definition 2 of adaptiveness.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use diffuse_bayes::{Distortion, Estimate};
use diffuse_model::{Configuration, LinkId, Probability, ProcessId, Topology};
use diffuse_sim::{SimTime, TimerId};

use crate::knowledge::View;
use crate::optimal::propagate;
use crate::params::{AdaptiveParams, CorrectionMode, LinkBlame, ReconcileMode};
use crate::protocol::{Actions, BroadcastId, Event, HeartbeatMessage, Message, Payload, Protocol};
use crate::{CoreError, NetworkKnowledge};

/// Per-process bookkeeping (`C_k[p_i]` plus its protocol fields).
#[derive(Debug, Clone)]
struct PeerRecord {
    /// The Bayesian estimate with its distortion factor.
    estimate: Estimate,
    /// Sequence number of the last heartbeat received (neighbors only).
    last_seq: u64,
    /// Suspicions since the last heartbeat (neighbors only).
    suspected: u32,
    /// Suspicion timeout `∆_k[p_i]`, in ticks.
    timeout: u64,
    /// Next Event-2 check.
    deadline: SimTime,
    /// Ticks this process itself was down since the last heartbeat from
    /// this peer — misses that must not be blamed on the link.
    downtime_since_receipt: u64,
}

/// The adaptive reliable broadcast protocol.
///
/// The protocol is event-driven: it schedules three named timers —
/// [`AdaptiveBroadcast::HEARTBEAT`] (emission, Algorithm 4 lines 14–17),
/// [`AdaptiveBroadcast::SUSPICION`] (Event 2 staleness checks, armed at
/// the earliest peer deadline) and [`AdaptiveBroadcast::SELF_TICK`]
/// (Event 3 self-monitoring) — instead of re-checking its deadlines on
/// every clock tick. Their ids are numbered in the legacy intra-tick
/// execution order, so firing due timers in id order reproduces the old
/// per-tick handler bit for bit.
///
/// # Example
///
/// Two neighbors exchanging heartbeats learn that their link is
/// reliable. [`LegacyTickShim`](crate::LegacyTickShim) drives the timers
/// from a plain tick loop:
///
/// ```
/// use diffuse_core::{AdaptiveBroadcast, AdaptiveParams, Actions, LegacyTickShim};
/// use diffuse_model::{LinkId, ProcessId};
/// use diffuse_sim::SimTime;
///
/// let ids = vec![ProcessId::new(0), ProcessId::new(1)];
/// let mut a = LegacyTickShim::new(AdaptiveBroadcast::new(
///     ids[0], ids.clone(), vec![ids[1]], AdaptiveParams::default()));
/// let mut b = LegacyTickShim::new(AdaptiveBroadcast::new(
///     ids[1], ids.clone(), vec![ids[0]], AdaptiveParams::default()));
///
/// let mut actions = Actions::new();
/// for t in 1..50u64 {
///     let now = SimTime::new(t);
///     a.handle_tick(now, &mut actions);
///     for (to, m) in actions.take_sends() {
///         assert_eq!(to, ids[1]);
///         b.handle_message(now, ids[0], m, &mut actions);
///     }
///     b.handle_tick(now, &mut actions);
///     for (_, m) in actions.take_sends() {
///         a.handle_message(now, ids[1], m, &mut actions);
///     }
/// }
/// let link = LinkId::new(ids[0], ids[1]).unwrap();
/// let loss = a.protocol().estimated_loss(link).unwrap().value();
/// assert!(loss < 0.05, "estimated loss {loss} should approach 0");
/// ```
#[derive(Debug)]
pub struct AdaptiveBroadcast {
    id: ProcessId,
    params: AdaptiveParams,
    neighbors: Vec<ProcessId>,
    all_processes: Vec<ProcessId>,

    /// `Λ_k` — the known topology (always includes this process).
    topology: Arc<Topology>,
    topology_version: u64,
    /// Last topology version merged from each neighbor.
    merged_versions: BTreeMap<ProcessId, u64>,

    peers: BTreeMap<ProcessId, PeerRecord>,
    links: BTreeMap<LinkId, Estimate>,
    /// Peer deadlines mirrored in deadline order, so the earliest
    /// Event-2 check is O(1) to find when (re)arming [`Self::SUSPICION`].
    deadline_queue: BTreeSet<(SimTime, ProcessId)>,

    my_seq: u64,
    next_heartbeat: SimTime,
    next_self_tick: SimTime,

    // Broadcast activity.
    next_bcast_seq: u64,
    seen: BTreeSet<BroadcastId>,
    delivered: Vec<(BroadcastId, Payload)>,
    errors: u64,
    heartbeats_sent: u64,
}

impl AdaptiveBroadcast {
    /// Heartbeat emission (Algorithm 4, lines 14–17).
    pub const HEARTBEAT: TimerId = TimerId::new(0);
    /// Event-2 staleness checks, armed at the earliest peer deadline.
    pub const SUSPICION: TimerId = TimerId::new(1);
    /// Event-3 self-monitoring (`∆tick`).
    pub const SELF_TICK: TimerId = TimerId::new(2);

    /// Creates an adaptive node.
    ///
    /// `all_processes` is the system membership `Π` (the paper assumes it
    /// is known from the start — Section 4.2); `neighbors` are the
    /// processes connected to `id` by direct links, the only thing a
    /// process initially knows about `Λ`.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors` contains `id` itself or processes outside
    /// `all_processes`.
    pub fn new(
        id: ProcessId,
        all_processes: Vec<ProcessId>,
        neighbors: Vec<ProcessId>,
        params: AdaptiveParams,
    ) -> Self {
        assert!(!neighbors.contains(&id), "a process cannot neighbor itself");
        assert!(
            neighbors.iter().all(|n| all_processes.contains(n)),
            "neighbors must be part of the system membership"
        );
        let mut all = all_processes;
        all.sort_unstable();
        all.dedup();

        let u = params.intervals;
        let delta = params.heartbeat_period;
        let mut peers = BTreeMap::new();
        for &p in &all {
            peers.insert(
                p,
                PeerRecord {
                    // Lines 2–7: unknown estimates, ∞ distortion, timeout δ.
                    estimate: Estimate::unknown(u),
                    last_seq: 0,
                    suspected: 0,
                    timeout: delta,
                    // Grace period: no suspicions before the first
                    // heartbeats can possibly arrive.
                    deadline: SimTime::new(2 * delta + 1),
                    downtime_since_receipt: 0,
                },
            );
        }
        // Line 8: p_k sees itself with no distortion.
        if let Some(me) = peers.get_mut(&id) {
            me.estimate = Estimate::first_hand(u);
        }

        // Lines 9–12: Λ_k starts with the direct links, at distortion 0.
        let mut topology = Topology::new();
        topology.add_process(id);
        let mut links = BTreeMap::new();
        for &n in &neighbors {
            let link = topology.add_link(id, n).expect("validated above");
            links.insert(link, Estimate::first_hand(u));
        }

        let deadline_queue = peers
            .iter()
            .filter(|&(&p, _)| p != id)
            .map(|(&p, r)| (r.deadline, p))
            .collect();

        AdaptiveBroadcast {
            id,
            neighbors,
            all_processes: all,
            topology: Arc::new(topology),
            topology_version: 1,
            merged_versions: BTreeMap::new(),
            peers,
            links,
            deadline_queue,
            my_seq: 0,
            next_heartbeat: SimTime::ZERO,
            next_self_tick: SimTime::new(params.self_tick_period),
            next_bcast_seq: 0,
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            errors: 0,
            heartbeats_sent: 0,
            params,
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }

    /// The currently known topology `Λ_k`.
    pub fn known_topology(&self) -> &Topology {
        &self.topology
    }

    /// Current estimate of a process's crash probability (posterior
    /// mean), or `None` for unknown processes.
    pub fn estimated_crash(&self, p: ProcessId) -> Option<Probability> {
        self.peers.get(&p).map(|r| r.estimate.beliefs.mean())
    }

    /// Current estimate of a link's loss probability (posterior mean), or
    /// `None` for unknown links.
    pub fn estimated_loss(&self, l: LinkId) -> Option<Probability> {
        self.links.get(&l).map(|e| e.beliefs.mean())
    }

    /// The full estimate (posterior + distortion) for a process.
    pub fn process_estimate(&self, p: ProcessId) -> Option<&Estimate> {
        self.peers.get(&p).map(|r| &r.estimate)
    }

    /// The full estimate for a link.
    pub fn link_estimate(&self, l: LinkId) -> Option<&Estimate> {
        self.links.get(&l)
    }

    /// Heartbeats sent so far.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent
    }

    /// Malformed or un-forwardable messages ignored so far.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Returns `true` once `Λ_k` spans the whole membership `Π` — the
    /// precondition for building spanning trees.
    pub fn topology_complete(&self) -> bool {
        self.topology.process_count() == self.all_processes.len() && self.topology.is_connected()
    }

    /// Snapshot of the approximated knowledge `(Λ_k, C_k)` as scalar
    /// probabilities (posterior means), ready for MRT construction.
    pub fn knowledge_snapshot(&self) -> NetworkKnowledge {
        let mut config = Configuration::new();
        for (&p, record) in &self.peers {
            config.set_crash(p, record.estimate.beliefs.mean());
        }
        for (&l, estimate) in &self.links {
            config.set_loss(l, estimate.beliefs.mean());
        }
        NetworkKnowledge::exact(Topology::clone(&self.topology), config)
    }

    /// Builds the shareable view of `(Λ_k, C_k)` for heartbeats.
    fn build_view(&self) -> Arc<View> {
        Arc::new(View {
            topology_version: self.topology_version,
            topology: Arc::clone(&self.topology),
            processes: self
                .peers
                .iter()
                .map(|(&p, r)| (p, r.estimate.clone()))
                .collect(),
            links: self.links.iter().map(|(&l, e)| (l, e.clone())).collect(),
        })
    }

    /// Event 1 bookkeeping for the link to the heartbeat's sender.
    fn reconcile_link(&mut self, from: ProcessId, seq: u64, now: SimTime) {
        let link = LinkId::new(self.id, from).expect("sender differs from self");
        let Some(record) = self.peers.get_mut(&from) else {
            return;
        };
        let gap = seq.saturating_sub(record.last_seq);
        if gap == 0 {
            // Duplicate or reordered heartbeat: estimates were already
            // merged for a newer one; skip bookkeeping.
            return;
        }
        let missed = (gap - 1) as u32;

        let delta = self.params.heartbeat_period;
        let suspected = record.suspected;
        let (adjust_pos, adjust_neg): (u32, u32) = match self.params.reconcile {
            ReconcileMode::SeqGap => {
                // Misses during my own downtime are nobody's fault.
                let excused = u32::try_from(record.downtime_since_receipt / delta.max(1))
                    .unwrap_or(u32::MAX)
                    .min(missed);
                let blamable = missed - excused;
                if suspected >= blamable {
                    (suspected - blamable, 0)
                } else {
                    (0, blamable - suspected)
                }
            }
            ReconcileMode::PaperLiteral => {
                let gap32 = u32::try_from(gap).unwrap_or(u32::MAX);
                if suspected >= gap32 {
                    (suspected - gap32, 0)
                } else {
                    (0, gap32 - suspected)
                }
            }
        };

        if let Some(estimate) = self.links.get_mut(&link) {
            match self.params.link_blame {
                LinkBlame::OnReconcile => {
                    // Blame exactly the proven losses; suspicions never
                    // touched the link.
                    let blamable = match self.params.reconcile {
                        ReconcileMode::SeqGap => {
                            let excused =
                                u32::try_from(record.downtime_since_receipt / delta.max(1))
                                    .unwrap_or(u32::MAX)
                                    .min(missed);
                            missed - excused
                        }
                        ReconcileMode::PaperLiteral => missed,
                    };
                    if blamable > 0 {
                        estimate.beliefs.decrease_reliability(blamable);
                    }
                }
                LinkBlame::OnTimeout => {
                    // Suspicions already decreased the link; settle the
                    // difference.
                    if adjust_pos > 0 {
                        match self.params.correction {
                            CorrectionMode::Exact => estimate.beliefs.undo_decrease(adjust_pos),
                            CorrectionMode::Bayes => {
                                estimate.beliefs.increase_reliability(adjust_pos)
                            }
                        }
                    }
                    if adjust_neg > 0 {
                        estimate.beliefs.decrease_reliability(adjust_neg);
                    }
                }
            }
            // The received heartbeat itself is a success observation.
            if self.params.reconcile == ReconcileMode::SeqGap {
                estimate.beliefs.increase_reliability(1);
            }
        }

        // Line 23: repeated over-suspicion means the timeout is too tight.
        if self.params.timeout_growth && adjust_pos > 1 {
            record.timeout += delta;
        }
        record.suspected = 0;
        record.last_seq = seq;
        record.downtime_since_receipt = 0;
        let old = record.deadline;
        record.deadline = now + record.timeout;
        let new = record.deadline;
        self.deadline_queue.remove(&(old, from));
        self.deadline_queue.insert((new, from));
    }

    /// Merges the sender's view (topology + estimates) into local state.
    fn merge_view(&mut self, from: ProcessId, view: &View, now: SimTime) {
        // Topology: merge only when the sender's version moved.
        let last = self.merged_versions.get(&from).copied().unwrap_or(0);
        if view.topology_version > last {
            let before = (self.topology.process_count(), self.topology.link_count());
            let merged = Arc::make_mut(&mut self.topology);
            merged.merge(&view.topology);
            if (merged.process_count(), merged.link_count()) != before {
                self.topology_version += 1;
            }
            self.merged_versions.insert(from, view.topology_version);
        }

        // Process estimates: lines 26–27, selectBestEstimate for every
        // process. The sender's self-estimate has distortion 0 and is
        // always adopted.
        for (p, theirs) in &view.processes {
            if *p == self.id {
                continue; // my own estimate is never overwritten
            }
            if let Some(record) = self.peers.get_mut(p) {
                if record.estimate.adopt_if_better(theirs) {
                    // Adoption counts as an update of C_k[p_i] (Event 2's
                    // "not updated … in the last ∆" clock restarts).
                    let old = record.deadline;
                    record.deadline = now + record.timeout;
                    let new = record.deadline;
                    self.deadline_queue.remove(&(old, *p));
                    self.deadline_queue.insert((new, *p));
                }
            }
        }

        // Link estimates: lines 28–32 — select best for known links,
        // adopt (distortion + 1) for new ones. My own direct links keep
        // their first-hand estimates (strict distortion comparison).
        for (l, theirs) in &view.links {
            match self.links.get_mut(l) {
                Some(mine) => {
                    mine.adopt_if_better(theirs);
                }
                None => {
                    let mut adopted = Estimate::unknown(self.params.intervals);
                    adopted.adopt(theirs);
                    self.links.insert(*l, adopted);
                    let merged = Arc::make_mut(&mut self.topology);
                    if !merged.contains_link(*l) {
                        merged.insert_link(*l);
                        self.topology_version += 1;
                    }
                }
            }
        }
    }
}

impl AdaptiveBroadcast {
    /// (Re)arms [`Self::SUSPICION`] at the earliest peer deadline.
    fn arm_suspicion(&self, actions: &mut Actions) {
        if let Some(&(at, _)) = self.deadline_queue.first() {
            actions.set_timer(Self::SUSPICION, at);
        }
    }

    /// Heartbeat emission (lines 14–17): one view snapshot, one sequenced
    /// heartbeat per neighbor.
    fn emit_heartbeats(&mut self, now: SimTime, actions: &mut Actions) {
        if now < self.next_heartbeat {
            // Fired early (e.g. a stale deadline): keep the chain alive.
            actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
            return;
        }
        self.my_seq += 1;
        // My own seq rides in the message; receivers track it in their
        // PeerRecord.
        let view = self.build_view();
        for &n in &self.neighbors {
            actions.send(
                n,
                Message::Heartbeat(HeartbeatMessage {
                    seq: self.my_seq,
                    view: Arc::clone(&view),
                }),
            );
            self.heartbeats_sent += 1;
        }
        // `max(1)`: the params fields are pub, and a period of 0 must
        // degrade to once per tick (the legacy behavior), not a
        // same-tick timer livelock.
        self.next_heartbeat = now + self.params.heartbeat_period.max(1);
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
    }

    /// Event 2: per-peer staleness checks, over every peer whose
    /// deadline has passed.
    fn run_suspicion_scan(&mut self, now: SimTime, actions: &mut Actions) {
        let is_neighbor: BTreeSet<ProcessId> = self.neighbors.iter().copied().collect();
        let blame_link_now = self.params.link_blame == LinkBlame::OnTimeout
            || self.params.reconcile == ReconcileMode::PaperLiteral;
        let mut suspected_neighbors: Vec<ProcessId> = Vec::new();
        for (&p, record) in self.peers.iter_mut() {
            if p == self.id || now < record.deadline {
                continue;
            }
            if is_neighbor.contains(&p) {
                // Lines 36–38: suspect the neighbor and decrease its
                // reliability belief. The suspicion is *first-hand*
                // evidence observed at network distance 1, so the
                // estimate's distortion is pinned there — otherwise stale
                // pre-crash copies echoing back from third parties (with
                // lower distortion) would keep overwriting the fresh
                // negative evidence. See DESIGN.md §4.
                record.suspected += 1;
                record.estimate.beliefs.decrease_reliability(1);
                record.estimate.distortion = Distortion::finite(1);
                suspected_neighbors.push(p);
            } else {
                // Line 35: remote knowledge gets distorted with time.
                record.estimate.distortion = record.estimate.distortion.incremented();
            }
            let old = record.deadline;
            record.deadline = now + record.timeout;
            self.deadline_queue.remove(&(old, p));
            self.deadline_queue.insert((record.deadline, p));
        }
        // Line 39 (paper mode): the link to a suspected neighbor is
        // decreased as well.
        if blame_link_now {
            for p in suspected_neighbors {
                let link = LinkId::new(self.id, p).expect("neighbor differs");
                if let Some(estimate) = self.links.get_mut(&link) {
                    estimate.beliefs.decrease_reliability(1);
                }
            }
        }
        self.arm_suspicion(actions);
    }

    /// Event 3: my own uptime is evidence of my reliability.
    fn self_tick(&mut self, now: SimTime, actions: &mut Actions) {
        if now < self.next_self_tick {
            actions.set_timer(Self::SELF_TICK, self.next_self_tick);
            return;
        }
        if let Some(me) = self.peers.get_mut(&self.id) {
            me.estimate.beliefs.increase_reliability(1);
        }
        self.next_self_tick = now + self.params.self_tick_period.max(1);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ProcessId,
        message: Message,
        actions: &mut Actions,
    ) {
        match message {
            Message::Heartbeat(HeartbeatMessage { seq, view }) => {
                if !self.neighbors.contains(&from) {
                    self.errors += 1;
                    return;
                }
                // Event 1: reconcile the direct link, then merge the view.
                self.reconcile_link(from, seq, now);
                self.merge_view(from, &view, now);
                // Receipt and adoption push peer deadlines around; keep
                // the suspicion timer at the new earliest one.
                self.arm_suspicion(actions);
            }
            Message::Data(data) => {
                if !self.seen.insert(data.id) {
                    return;
                }
                self.delivered.push((data.id, data.payload.clone()));
                actions.deliver(data.id, data.payload.clone());
                if propagate(
                    self.id,
                    data.id,
                    &data.payload,
                    &data.tree,
                    self.params.target_reliability,
                    actions,
                )
                .is_err()
                {
                    self.errors += 1;
                }
            }
            _ => {}
        }
    }

    fn on_recovery(&mut self, now: SimTime, down_ticks: u64, actions: &mut Actions) {
        // Event 4: a crash lasting n × ∆tick is n failure observations.
        let n =
            u32::try_from((down_ticks / self.params.self_tick_period).max(1)).unwrap_or(u32::MAX);
        if let Some(me) = self.peers.get_mut(&self.id) {
            me.estimate.beliefs.decrease_reliability(n);
        }
        // My silence was my fault, not my neighbors': excuse the misses I
        // caused and give everyone a fresh grace period.
        for (&p, record) in self.peers.iter_mut() {
            if p == self.id {
                continue;
            }
            record.downtime_since_receipt += down_ticks;
            let old = record.deadline;
            record.deadline = now + record.timeout;
            self.deadline_queue.remove(&(old, p));
            self.deadline_queue.insert((record.deadline, p));
        }
        self.next_self_tick = now + self.params.self_tick_period.max(1);
        self.next_heartbeat = now; // announce recovery promptly
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
        self.arm_suspicion(actions);
    }
}

impl Protocol for AdaptiveBroadcast {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, actions: &mut Actions) {
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
        self.arm_suspicion(actions);
    }

    fn on_event(&mut self, now: SimTime, event: Event, actions: &mut Actions) {
        match event {
            Event::Message { from, message } => self.on_message(now, from, message, actions),
            Event::Timer(Self::HEARTBEAT) => self.emit_heartbeats(now, actions),
            Event::Timer(Self::SUSPICION) => self.run_suspicion_scan(now, actions),
            Event::Timer(Self::SELF_TICK) => self.self_tick(now, actions),
            Event::Timer(_) => {}
            Event::Recovery { down_ticks } => self.on_recovery(now, down_ticks, actions),
            Event::Broadcast(payload) => {
                if self.broadcast(now, payload, actions).is_err() {
                    self.errors += 1;
                }
            }
        }
    }

    fn broadcast(
        &mut self,
        _now: SimTime,
        payload: Payload,
        actions: &mut Actions,
    ) -> Result<BroadcastId, CoreError> {
        if !self.topology_complete() {
            return Err(CoreError::KnowledgeIncomplete);
        }
        let knowledge = self.knowledge_snapshot();
        let tree = knowledge.reliability_tree(self.id)?;
        let wire = Arc::new(tree.to_wire());
        let id = BroadcastId {
            origin: self.id,
            seq: self.next_bcast_seq,
        };
        self.next_bcast_seq += 1;
        self.seen.insert(id);
        propagate(
            self.id,
            id,
            &payload,
            &wire,
            self.params.target_reliability,
            actions,
        )?;
        self.delivered.push((id, payload.clone()));
        actions.deliver(id, payload);
        Ok(id)
    }

    fn delivered(&self) -> &[(BroadcastId, Payload)] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_bayes::Distortion;

    use crate::protocol::LegacyTickShim;

    type Shim = LegacyTickShim<AdaptiveBroadcast>;

    fn shim(node: AdaptiveBroadcast) -> Shim {
        LegacyTickShim::new(node)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn params() -> AdaptiveParams {
        AdaptiveParams::default()
    }

    fn line3() -> (Shim, Shim, Shim) {
        // 0 — 1 — 2.
        let all = vec![p(0), p(1), p(2)];
        (
            shim(AdaptiveBroadcast::new(
                p(0),
                all.clone(),
                vec![p(1)],
                params(),
            )),
            shim(AdaptiveBroadcast::new(
                p(1),
                all.clone(),
                vec![p(0), p(2)],
                params(),
            )),
            shim(AdaptiveBroadcast::new(p(2), all, vec![p(1)], params())),
        )
    }

    /// Runs one tick for every node, routing messages instantly.
    fn exchange(nodes: &mut [&mut Shim], now: SimTime) {
        let mut actions = Actions::new();
        let mut pending: Vec<(ProcessId, ProcessId, Message)> = Vec::new();
        for node in nodes.iter_mut() {
            node.handle_tick(now, &mut actions);
            let from = node.protocol().id();
            for (to, m) in actions.take_sends() {
                pending.push((from, to, m));
            }
        }
        for (from, to, m) in pending {
            for node in nodes.iter_mut() {
                if node.protocol().id() == to {
                    node.handle_message(now, from, m.clone(), &mut actions);
                    actions.clear();
                }
            }
        }
    }

    #[test]
    fn initial_state_matches_algorithm4_initialization() {
        let node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1), p(2)], vec![p(1)], params());
        // Own estimate: distortion 0. Remote: ∞.
        assert_eq!(
            node.process_estimate(p(0)).unwrap().distortion,
            Distortion::ZERO
        );
        assert!(node
            .process_estimate(p(2))
            .unwrap()
            .distortion
            .is_infinite());
        // Direct links at distortion 0; only those exist.
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        assert_eq!(
            node.link_estimate(l01).unwrap().distortion,
            Distortion::ZERO
        );
        assert!(node
            .link_estimate(LinkId::new(p(1), p(2)).unwrap())
            .is_none());
        assert!(!node.topology_complete());
    }

    #[test]
    fn start_arms_all_three_timers() {
        let mut node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1)], vec![p(1)], params());
        let mut actions = Actions::new();
        node.on_start(SimTime::ZERO, &mut actions);
        let armed: Vec<TimerId> = actions.timer_ops().iter().map(|&(t, _)| t).collect();
        assert!(armed.contains(&AdaptiveBroadcast::HEARTBEAT));
        assert!(armed.contains(&AdaptiveBroadcast::SUSPICION));
        assert!(armed.contains(&AdaptiveBroadcast::SELF_TICK));
        // The suspicion timer sits at the initial grace deadline 2δ + 1.
        let delta = params().heartbeat_period;
        assert!(actions
            .timer_ops()
            .iter()
            .any(|&(t, at)| t == AdaptiveBroadcast::SUSPICION
                && at == Some(SimTime::new(2 * delta + 1))));
    }

    #[test]
    #[should_panic(expected = "neighbor")]
    fn self_neighbor_is_rejected() {
        let _ = AdaptiveBroadcast::new(p(0), vec![p(0)], vec![p(0)], params());
    }

    #[test]
    fn topology_spreads_along_a_line() {
        let (mut a, mut b, mut c) = line3();
        // Two exchanges: a learns l12 via b's second heartbeat.
        for t in 1..=4u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        assert!(
            a.protocol().topology_complete(),
            "a's topology: {:?}",
            a.protocol().known_topology()
        );
        assert!(c.protocol().topology_complete());
        assert!(a
            .protocol()
            .known_topology()
            .contains_link(LinkId::new(p(1), p(2)).unwrap()));
    }

    #[test]
    fn reliable_heartbeats_drive_link_estimates_down() {
        let (mut a, mut b, mut c) = line3();
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        let before = a.protocol().estimated_loss(l01).unwrap().value();
        for t in 1..=60u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(before > 0.4, "uniform prior mean should start near 0.5");
        assert!(after < 0.05, "estimated loss {after} should approach 0");
        // And remote link estimates were learned through b.
        let l12 = LinkId::new(p(1), p(2)).unwrap();
        assert!(a.protocol().estimated_loss(l12).unwrap().value() < 0.2);
    }

    #[test]
    fn sender_self_estimate_is_always_adopted() {
        let (mut a, mut b, mut c) = line3();
        for t in 1..=10u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        // a's estimate of b is second-hand: distortion exactly 1.
        assert_eq!(
            a.protocol().process_estimate(p(1)).unwrap().distortion,
            Distortion::finite(1)
        );
        // a's estimate of c traveled two hops: distortion 2.
        assert_eq!(
            a.protocol().process_estimate(p(2)).unwrap().distortion,
            Distortion::finite(2)
        );
    }

    #[test]
    fn silence_triggers_suspicions_and_decreases_beliefs() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));

        // Warm up with healthy exchanges.
        for t in 1..=20u64 {
            exchange(&mut [&mut a, &mut b], SimTime::new(t));
        }
        let healthy = a.protocol().estimated_crash(p(1)).unwrap().value();

        // Now b goes silent; a ticks alone.
        let mut actions = Actions::new();
        for t in 21..=40u64 {
            a.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let suspected = a.protocol().estimated_crash(p(1)).unwrap().value();
        assert!(
            suspected > healthy,
            "silence must increase the crash estimate ({healthy} → {suspected})"
        );
        // Default (paper) blame mode: total silence also degrades the
        // link estimate — a dead link and a dead peer are indistinguishable
        // until a sequence number proves otherwise.
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        assert!(a.protocol().estimated_loss(l01).unwrap().value() > 0.1);
    }

    #[test]
    fn crash_only_silence_is_undone_on_the_link_after_reconcile() {
        // b never sends for a while (crashed — its seq does not advance),
        // then resumes: the link's timeout-time decreases are exactly
        // undone because no sequence gap appears.
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        let mut actions = Actions::new();

        // Healthy warm-up.
        for t in 1..=30u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
            }
            actions.clear();
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                a.handle_message(now, p(1), m, &mut actions);
            }
            actions.clear();
        }
        let healthy = a.protocol().estimated_loss(l01).unwrap().value();

        // b silent (crashed) for 15 periods: a suspects, link degrades.
        for t in 31..=45u64 {
            a.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let during = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(during > healthy, "{healthy} → {during}");

        // b resumes; its seq advanced by 0 while down (it sent nothing).
        b.handle_tick(SimTime::new(46), &mut actions);
        let now = SimTime::new(46);
        for (_, m) in actions.take_sends() {
            a.handle_message(now, p(1), m, &mut actions);
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            after < healthy + 0.02,
            "exact undo must clear crash-only suspicions ({healthy} → {during} → {after})"
        );
    }

    #[test]
    fn seq_gaps_blame_the_link() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();

        let mut actions = Actions::new();
        let mut drop_every = 3u64; // drop every third heartbeat b → a
        let mut dropped = 0u32;
        for t in 1..=90u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
                actions.clear();
            }
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                drop_every -= 1;
                if drop_every == 0 {
                    drop_every = 3;
                    dropped += 1;
                    continue; // lost on the wire
                }
                a.handle_message(now, p(1), m, &mut actions);
                actions.clear();
            }
        }
        assert!(dropped > 20);
        let estimated = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            (estimated - 1.0 / 3.0).abs() < 0.12,
            "loss estimate {estimated} should approach 1/3"
        );
    }

    #[test]
    fn events_3_and_4_shape_self_estimate() {
        let all = vec![p(0), p(1)];
        let mut node = shim(AdaptiveBroadcast::new(p(0), all, vec![p(1)], params()));
        let mut actions = Actions::new();
        for t in 1..=50u64 {
            node.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let up_only = node.protocol().estimated_crash(p(0)).unwrap().value();
        assert!(up_only < 0.05, "all-up self estimate {up_only}");

        // A 50-tick outage halves the observed uptime.
        node.handle_recovery(SimTime::new(101), 50, &mut actions);
        let after_crash = node.protocol().estimated_crash(p(0)).unwrap().value();
        assert!(
            after_crash > up_only,
            "downtime must raise the crash estimate"
        );
        assert!((after_crash - 0.5).abs() < 0.15, "estimate {after_crash}");
    }

    #[test]
    fn broadcast_requires_complete_topology_then_works() {
        let (mut a, mut b, mut c) = line3();
        let mut actions = Actions::new();
        assert!(matches!(
            a.broadcast(SimTime::ZERO, Payload::from("x"), &mut actions),
            Err(CoreError::KnowledgeIncomplete)
        ));

        for t in 1..=30u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        let id = a
            .broadcast(SimTime::new(31), Payload::from("x"), &mut actions)
            .unwrap();
        assert_eq!(id.origin, p(0));
        // All copies go to the line's next hop.
        assert!(actions.sends().iter().all(|(to, _)| *to == p(1)));
        assert!(!actions.sends().is_empty());

        // Deliver one copy at b: it forwards toward c.
        let (_, m) = actions.take_sends()[0].clone();
        let mut b_actions = Actions::new();
        b.handle_message(SimTime::new(32), p(0), m, &mut b_actions);
        assert_eq!(b.protocol().delivered().len(), 1);
        assert!(b_actions.sends().iter().all(|(to, _)| *to == p(2)));
    }

    #[test]
    fn broadcast_event_failures_are_counted_not_propagated() {
        // Event::Broadcast is fire-and-forget: with incomplete topology
        // knowledge the request fails into the error counter instead of
        // returning an error the (absent) caller could handle.
        let mut node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1), p(2)], vec![p(1)], params());
        let mut actions = Actions::new();
        node.on_event(
            SimTime::new(1),
            Event::Broadcast(Payload::from("too early")),
            &mut actions,
        );
        assert_eq!(node.error_count(), 1);
        assert!(actions.deliveries().is_empty());
    }

    #[test]
    fn heartbeats_from_strangers_are_ignored() {
        let all = vec![p(0), p(1), p(2)];
        let mut node = AdaptiveBroadcast::new(p(0), all, vec![p(1)], params());
        let view = node.build_view();
        let mut actions = Actions::new();
        node.handle_message(
            SimTime::new(1),
            p(2), // not a neighbor
            Message::Heartbeat(HeartbeatMessage { seq: 1, view }),
            &mut actions,
        );
        assert_eq!(node.error_count(), 1);
    }

    #[test]
    fn duplicate_heartbeat_seq_is_idempotent() {
        let all = vec![p(0), p(1)];
        let mut a = AdaptiveBroadcast::new(p(0), all.clone(), vec![p(1)], params());
        let b = AdaptiveBroadcast::new(p(1), all, vec![p(0)], params());
        let view = b.build_view();
        let mut actions = Actions::new();
        let hb = Message::Heartbeat(HeartbeatMessage { seq: 1, view });
        a.handle_message(SimTime::new(1), p(1), hb.clone(), &mut actions);
        let after_first = a.estimated_loss(LinkId::new(p(0), p(1)).unwrap()).unwrap();
        a.handle_message(SimTime::new(1), p(1), hb, &mut actions);
        let after_second = a.estimated_loss(LinkId::new(p(0), p(1)).unwrap()).unwrap();
        assert_eq!(after_first, after_second);
    }

    #[test]
    fn recovery_excuses_missed_heartbeats() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();

        let mut actions = Actions::new();
        // Healthy warm-up.
        for t in 1..=30u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
            }
            actions.clear();
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                a.handle_message(now, p(1), m, &mut actions);
            }
            actions.clear();
        }
        let healthy = a.protocol().estimated_loss(l01).unwrap().value();

        // a is down for ticks 31–50: b keeps sending (messages vanish),
        // b's seq advances by 20.
        for t in 31..=50u64 {
            b.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        a.handle_recovery(SimTime::new(51), 20, &mut actions);
        actions.clear();
        // Next heartbeat from b arrives with a 20-gap; all excused.
        b.handle_tick(SimTime::new(51), &mut actions);
        let sends = actions.take_sends();
        let now = SimTime::new(51);
        for (_, m) in sends {
            a.handle_message(now, p(1), m, &mut actions);
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            after <= healthy + 0.02,
            "own downtime must not poison the link estimate ({healthy} → {after})"
        );
    }
}

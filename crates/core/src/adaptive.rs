//! The adaptive probabilistic reliable broadcast (Section 4,
//! Algorithms 3–5).
//!
//! The protocol runs two activities side by side:
//!
//! * the **broadcast activity** — identical to the optimal Algorithm 1,
//!   but fed by the approximated knowledge below;
//! * the **approximation activity** (Algorithm 4) — periodic heartbeats
//!   carrying the local `(Λ_k, C_k)` view, Bayesian updates from observed
//!   receipts/timeouts, and distortion-ranked adoption of remote
//!   estimates (`selectBestEstimate`, Algorithm 3).
//!
//! If the system's topology and failure probabilities remain stable long
//! enough, every process's view converges to the real `(G, C)` and the
//! broadcast activity's message counts coincide with the optimal
//! algorithm's — the paper's Definition 2 of adaptiveness.
//!
//! # Delta heartbeats
//!
//! Under the default [`ViewMode::Delta`], heartbeats carry only the view
//! entries whose [`Estimate::version`] moved since the last generation
//! the receiver acknowledged (piggybacked on its own heartbeats back to
//! us), with a full-view fallback on first contact, on any topology
//! change, and until the latest full view is acknowledged. Deltas are
//! *cumulative since their base*, so a lost heartbeat merely widens the
//! next delta instead of wedging convergence. The receiver keeps a
//! cheap copy-on-write mirror of each neighbor's view plus a per-entry
//! evaluation memo, which is what makes skipping unchanged entries an
//! *exact* optimization: the resulting estimates, broadcast plans and
//! wire metrics are bit-identical to [`ViewMode::Full`] (the paper's
//! literal data flow, kept as the executable specification) — asserted
//! by the full-vs-delta equivalence property test.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use diffuse_bayes::{Distortion, Estimate};
use diffuse_model::{Configuration, LinkId, Probability, ProcessId, Topology};
use diffuse_sim::{SimTime, TimerId};

use crate::adversary::ProtocolAudit;
use crate::knowledge::{DeltaView, View};
use crate::optimal::propagate;
use crate::params::{AdaptiveParams, CorrectionMode, LinkBlame, ReconcileMode, ViewMode};
use crate::protocol::{
    Actions, BroadcastId, Event, HeartbeatMessage, HeartbeatView, Message, Payload, Protocol,
};
use crate::{CoreError, NetworkKnowledge};

/// Per-process bookkeeping (`C_k[p_i]` plus its protocol fields).
#[derive(Debug, Clone)]
struct PeerRecord {
    /// The Bayesian estimate with its distortion factor.
    estimate: Estimate,
    /// Sequence number of the last heartbeat received (neighbors only).
    last_seq: u64,
    /// Suspicions since the last heartbeat (neighbors only).
    suspected: u32,
    /// Suspicion timeout `∆_k[p_i]`, in ticks.
    timeout: u64,
    /// Next Event-2 check.
    deadline: SimTime,
    /// Ticks this process itself was down since the last heartbeat from
    /// this peer — misses that must not be blamed on the link.
    downtime_since_receipt: u64,
    /// Pending success observations for the direct link to this neighbor,
    /// not yet folded into the link estimator (see
    /// [`AdaptiveParams::evidence_batch`]).
    link_up: u32,
    /// Pending loss observations for the direct link to this neighbor.
    ///
    /// Keeping losses pending also makes over-suspicion corrections exact
    /// for free: `reconcile_link` cancels unfounded suspicions against this
    /// counter (integer arithmetic) before any estimator-level undo.
    link_down: u32,
}

/// The suspicion-deadline schedule: the set of times at which an
/// Event-2 scan may be due.
///
/// Peer deadlines themselves live on the `PeerRecord`s; this is the
/// **insert-only** (lazy-deletion) index over them. Every deadline
/// assignment registers its time; nothing is ever removed when a
/// deadline moves — a superseded time simply fires a scan that finds
/// the peers not yet due and skips them, and expired times are dropped
/// as the scan consumes them. Arming the `SUSPICION` timer is a plain
/// `first()`. This replaces the eager remove+insert per deadline reset
/// (a `BTreeSet<(SimTime, ProcessId)>` rebalance, ~120 resets per node
/// per round at n = 30) that cost ~28% of `heartbeat/round_30_nodes`
/// after PR 3; times dedup in the set, so the steady state inserts
/// one sentinel per distinct deadline instead of two rebalances per
/// reset.
///
/// Far-future deadlines are additionally **bucketed**: a deadline more
/// than [`DeadlineQueue::NEAR`] ticks out registers a sentinel at the
/// start of its enclosing [`DeadlineQueue::BUCKET`]-wide bucket rather
/// than at its exact time, so the churn of timeout growth constantly
/// pushing deadlines around the far future dedups into one sentinel
/// per bucket instead of one per distinct deadline. Rounding *down*
/// (never up) keeps observable behavior bit-identical to the exact
/// queue: a bucket sentinel fires a scan at most `BUCKET - 1` ticks
/// before the deadline it covers, the scan finds the peer not yet due
/// and calls [`DeadlineQueue::rearm`], and the deadline — by then
/// inside the near window — is re-registered at its exact time. Peers
/// are therefore still processed at exactly their deadline tick; the
/// only cost is an occasional no-op scan at a bucket boundary.
#[derive(Debug)]
struct DeadlineQueue {
    times: BTreeSet<SimTime>,
    /// The time of the most recent insert, skipping the set lookup for
    /// the common burst of same-deadline resets within one handler.
    /// Cleared on expiry (a cached time may otherwise refer to an
    /// already-consumed sentinel).
    last: Option<SimTime>,
    /// Bucket width for far-future sentinels; `1` is exact mode (every
    /// sentinel sits at its deadline), used to equivalence-test the
    /// bucketed production queue.
    bucket: u64,
}

impl Default for DeadlineQueue {
    fn default() -> Self {
        DeadlineQueue {
            times: BTreeSet::new(),
            last: None,
            bucket: DeadlineQueue::BUCKET,
        }
    }
}

impl DeadlineQueue {
    /// Width of a far-future bucket.
    const BUCKET: u64 = 64;
    /// Horizon inside which deadlines keep their exact sentinel. Must
    /// be at least [`Self::BUCKET`] so a rounded-down bucket sentinel
    /// is still strictly in the future.
    const NEAR: u64 = 128;

    /// Exact (bucket-disabled) mode, for equivalence tests.
    #[cfg(test)]
    fn exact() -> Self {
        DeadlineQueue {
            bucket: 1,
            ..DeadlineQueue::default()
        }
    }

    /// The sentinel time registered for a deadline `at` assigned at
    /// `now`: exact inside the near window, the enclosing bucket start
    /// beyond it.
    fn sentinel(&self, now: SimTime, at: SimTime) -> SimTime {
        if self.bucket <= 1 || at.ticks() <= now.ticks() + Self::NEAR {
            at
        } else {
            let s = SimTime::new((at.ticks() / self.bucket) * self.bucket);
            debug_assert!(
                s > now,
                "NEAR >= BUCKET keeps bucket sentinels in the future"
            );
            s
        }
    }

    fn insert(&mut self, now: SimTime, at: SimTime) {
        let s = self.sentinel(now, at);
        if self.last != Some(s) {
            self.times.insert(s);
            self.last = Some(s);
        }
    }

    /// Re-registers a not-yet-due deadline encountered by a scan at
    /// `now`. A deadline's covering sentinel can only have been
    /// consumed early if it was bucketed — i.e. fired within one bucket
    /// of the deadline — so deadlines farther out than that still hold
    /// a registered sentinel and are skipped for free.
    fn rearm(&mut self, now: SimTime, at: SimTime) {
        if at.ticks() - now.ticks() < self.bucket {
            self.insert(now, at);
        }
    }

    /// The earliest scheduled scan time, if any.
    fn earliest(&self) -> Option<SimTime> {
        self.times.first().copied()
    }

    /// Drops every scan time due at or before `now`; returns `true` if
    /// there was any (i.e. a scan is warranted).
    fn expire(&mut self, now: SimTime) -> bool {
        self.last = None;
        let mut fired = false;
        while let Some(&at) = self.times.first() {
            if at > now {
                break;
            }
            self.times.pop_first();
            fired = true;
        }
        fired
    }
}

/// Where a mirrored estimate lives.
///
/// The common case — an entry updated by the most recent frame — is a
/// bare index into the mirror's retained `latest` frame, so merging a
/// dense delta writes one `u32` per entry instead of cloning estimates.
/// Entries the next frame does *not* update are materialized to
/// [`MirrorValue::Inline`] before the frame is replaced; that
/// materialization pass costs exactly the churn difference between two
/// consecutive frames (zero in a fully dense stream, tiny in a sparse
/// one).
#[derive(Debug)]
enum MirrorValue {
    /// Retained handle, materialized (one `Arc` clone, no estimate copy)
    /// when its source frame was replaced.
    Inline(Arc<Estimate>),
    /// Index into the mirror's `latest` frame (the entry's own table:
    /// processes or links).
    Latest(u32),
}

/// One mirrored view entry plus the evaluation memo against it.
#[derive(Debug)]
struct MirrorEntry<K> {
    key: K,
    /// The neighbor's estimate as last seen (see [`MirrorValue`]).
    value: MirrorValue,
    /// Our own estimate's version when this entry was last evaluated.
    my_version: u64,
    /// Whether that evaluation adopted the neighbor's estimate.
    adopted: bool,
}

/// Receiver-side mirror of one neighbor's last-known view.
#[derive(Debug)]
struct NeighborMirror {
    /// Generation of the last merged frame — the value acknowledged back
    /// to this neighbor.
    generation: u64,
    /// The neighbor's topology version backing this mirror.
    topology_version: u64,
    /// The most recent frame merged; `MirrorValue::Latest` entries
    /// resolve into it.
    latest: HeartbeatView,
    processes: Vec<MirrorEntry<ProcessId>>,
    links: Vec<MirrorEntry<LinkId>>,
    /// Ascending indices of `processes` entries currently pointing at
    /// `latest`.
    latest_procs: Vec<u32>,
    /// Same, for `links`.
    latest_links: Vec<u32>,
}

/// Resolves a process-table index of a retained frame.
fn frame_process(frame: &HeartbeatView, idx: u32) -> &Arc<Estimate> {
    match frame {
        HeartbeatView::Full(v) => &v.processes[idx as usize].1,
        HeartbeatView::Delta(d) => &d.processes[idx as usize].1,
    }
}

/// Resolves a link-table index of a retained frame.
fn frame_link(frame: &HeartbeatView, idx: u32) -> &Arc<Estimate> {
    match frame {
        HeartbeatView::Full(v) => &v.links[idx as usize].1,
        HeartbeatView::Delta(d) => &d.links[idx as usize].1,
    }
}

/// Materializes the entries of `old_frame` that the newly merged frame
/// did not re-point (`old_members \ new_members`, both ascending): their
/// source frame is about to be dropped, so the mirror takes its own
/// handle on each such entry (an `Arc` clone — the estimate itself is
/// shared, never copied). Cost is exactly the churn difference between
/// the two frames.
fn materialize_dropped<K>(
    entries: &mut [MirrorEntry<K>],
    old_frame: &HeartbeatView,
    resolve: impl Fn(&HeartbeatView, u32) -> Arc<Estimate>,
    old_members: &[u32],
    new_members: &[u32],
) {
    if old_members == new_members {
        // The new frame re-pointed exactly the old frame's entries — the
        // steady state of a dense delta stream. One memcmp skips the
        // walk.
        return;
    }
    let mut new_it = new_members.iter().peekable();
    for &ei in old_members {
        while new_it.peek().is_some_and(|&&n| n < ei) {
            new_it.next();
        }
        if new_it.peek() == Some(&&ei) {
            continue; // re-pointed at the new frame
        }
        let entry = &mut entries[ei as usize];
        if let MirrorValue::Latest(idx) = entry.value {
            entry.value = MirrorValue::Inline(resolve(old_frame, idx));
        }
    }
}

/// Sender-side per-neighbor delta bookkeeping.
#[derive(Debug, Default, Clone)]
struct NeighborEmission {
    /// Latest generation this neighbor acknowledged (0 = none yet).
    acked: u64,
}

/// Sender-side emission state: the cached copy-on-write view and the
/// change bookkeeping that deltas are assembled from.
#[derive(Debug)]
struct EmissionCache {
    /// Emission counter; stamped into every outgoing view frame.
    generation: u64,
    /// The cached full view, rebuilt copy-on-write per emission for the
    /// entries whose version moved.
    view: Arc<View>,
    /// Per `view.processes` entry: (estimate version at last sync,
    /// generation of the last sync that changed it).
    proc_sync: Vec<(u64, u64)>,
    /// Same, for `view.links`.
    link_sync: Vec<(u64, u64)>,
    /// The generation at which our topology version last changed. A
    /// neighbor whose ack predates it may hold a mirror with the old
    /// topology, so it gets full views until a newer ack arrives;
    /// everyone else gets deltas.
    topo_change_gen: u64,
    /// Per-neighbor ack bookkeeping.
    neighbors: BTreeMap<ProcessId, NeighborEmission>,
}

impl Default for EmissionCache {
    fn default() -> Self {
        EmissionCache {
            generation: 0,
            view: Arc::new(View {
                generation: 0,
                topology_version: 0,
                topology: Arc::new(Topology::new()),
                processes: Vec::new(),
                links: Vec::new(),
            }),
            proc_sync: Vec::new(),
            link_sync: Vec::new(),
            topo_change_gen: 0,
            neighbors: BTreeMap::new(),
        }
    }
}

/// The adaptive reliable broadcast protocol.
///
/// The protocol is event-driven: it schedules three named timers —
/// [`AdaptiveBroadcast::HEARTBEAT`] (emission, Algorithm 4 lines 14–17),
/// [`AdaptiveBroadcast::SUSPICION`] (Event 2 staleness checks, armed at
/// the earliest peer deadline) and [`AdaptiveBroadcast::SELF_TICK`]
/// (Event 3 self-monitoring) — instead of re-checking its deadlines on
/// every clock tick. Their ids are numbered in the legacy intra-tick
/// execution order, so firing due timers in id order reproduces the old
/// per-tick handler bit for bit.
///
/// # Example
///
/// Two neighbors exchanging heartbeats learn that their link is
/// reliable. [`LegacyTickShim`](crate::LegacyTickShim) drives the timers
/// from a plain tick loop:
///
/// ```
/// use diffuse_core::{AdaptiveBroadcast, AdaptiveParams, Actions, LegacyTickShim};
/// use diffuse_model::{LinkId, ProcessId};
/// use diffuse_sim::SimTime;
///
/// let ids = vec![ProcessId::new(0), ProcessId::new(1)];
/// let mut a = LegacyTickShim::new(AdaptiveBroadcast::new(
///     ids[0], ids.clone(), vec![ids[1]], AdaptiveParams::default()));
/// let mut b = LegacyTickShim::new(AdaptiveBroadcast::new(
///     ids[1], ids.clone(), vec![ids[0]], AdaptiveParams::default()));
///
/// let mut actions = Actions::new();
/// for t in 1..50u64 {
///     let now = SimTime::new(t);
///     a.handle_tick(now, &mut actions);
///     for (to, m) in actions.take_sends() {
///         assert_eq!(to, ids[1]);
///         b.handle_message(now, ids[0], m, &mut actions);
///     }
///     b.handle_tick(now, &mut actions);
///     for (_, m) in actions.take_sends() {
///         a.handle_message(now, ids[1], m, &mut actions);
///     }
/// }
/// let link = LinkId::new(ids[0], ids[1]).unwrap();
/// let loss = a.protocol().estimated_loss(link).unwrap().value();
/// assert!(loss < 0.05, "estimated loss {loss} should approach 0");
/// ```
#[derive(Debug)]
pub struct AdaptiveBroadcast {
    id: ProcessId,
    params: AdaptiveParams,
    neighbors: Vec<ProcessId>,
    all_processes: Vec<ProcessId>,

    /// `Λ_k` — the known topology (always includes this process).
    topology: Arc<Topology>,
    topology_version: u64,
    /// Last topology version merged from each neighbor.
    merged_versions: BTreeMap<ProcessId, u64>,

    peers: BTreeMap<ProcessId, PeerRecord>,
    links: BTreeMap<LinkId, Estimate>,
    /// Insert-only schedule of Event-2 scan times (see
    /// [`DeadlineQueue`]).
    deadlines: DeadlineQueue,

    /// Sender-side delta emission state.
    emission: EmissionCache,
    /// Receiver-side per-neighbor view mirrors (delta mode only).
    mirrors: BTreeMap<ProcessId, NeighborMirror>,
    /// Recycled frame-member index buffers for delta merges.
    member_scratch: (Vec<u32>, Vec<u32>),

    /// Pending self-uptime success observations (Event 3), folded into my
    /// own estimate once [`AdaptiveParams::evidence_batch`] accumulate.
    self_up: u32,

    my_seq: u64,
    next_heartbeat: SimTime,
    next_self_tick: SimTime,

    // Broadcast activity.
    next_bcast_seq: u64,
    seen: BTreeSet<BroadcastId>,
    delivered: Vec<(BroadcastId, Payload)>,
    errors: u64,
    heartbeats_sent: u64,
    /// Adversary-facing receiver counters: per-sender entries offered
    /// vs. adopted, and future-stamped acks rejected.
    audit: ProtocolAudit,
}

impl AdaptiveBroadcast {
    /// Heartbeat emission (Algorithm 4, lines 14–17).
    pub const HEARTBEAT: TimerId = TimerId::new(0);
    /// Event-2 staleness checks, armed at the earliest peer deadline.
    pub const SUSPICION: TimerId = TimerId::new(1);
    /// Event-3 self-monitoring (`∆tick`).
    pub const SELF_TICK: TimerId = TimerId::new(2);

    /// Creates an adaptive node.
    ///
    /// `all_processes` is the system membership `Π` (the paper assumes it
    /// is known from the start — Section 4.2); `neighbors` are the
    /// processes connected to `id` by direct links, the only thing a
    /// process initially knows about `Λ`.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors` contains `id` itself or processes outside
    /// `all_processes`.
    pub fn new(
        id: ProcessId,
        all_processes: Vec<ProcessId>,
        neighbors: Vec<ProcessId>,
        params: AdaptiveParams,
    ) -> Self {
        assert!(!neighbors.contains(&id), "a process cannot neighbor itself");
        assert!(
            neighbors.iter().all(|n| all_processes.contains(n)),
            "neighbors must be part of the system membership"
        );
        let mut all = all_processes;
        all.sort_unstable();
        all.dedup();

        let u = params.intervals;
        let delta = params.heartbeat_period;
        let mut peers = BTreeMap::new();
        for &p in &all {
            peers.insert(
                p,
                PeerRecord {
                    // Lines 2–7: unknown estimates, ∞ distortion, timeout δ.
                    estimate: Estimate::unknown(u),
                    last_seq: 0,
                    suspected: 0,
                    timeout: delta,
                    // Grace period: no suspicions before the first
                    // heartbeats can possibly arrive.
                    deadline: SimTime::new(2 * delta + 1),
                    downtime_since_receipt: 0,
                    link_up: 0,
                    link_down: 0,
                },
            );
        }
        // Line 8: p_k sees itself with no distortion.
        if let Some(me) = peers.get_mut(&id) {
            me.estimate = Estimate::first_hand(u);
        }

        // Lines 9–12: Λ_k starts with the direct links, at distortion 0.
        let mut topology = Topology::new();
        topology.add_process(id);
        let mut links = BTreeMap::new();
        for &n in &neighbors {
            let link = topology.add_link(id, n).expect("validated above");
            links.insert(link, Estimate::first_hand(u));
        }

        let mut deadlines = DeadlineQueue::default();
        for (_, r) in peers.iter().filter(|&(&p, _)| p != id) {
            deadlines.insert(SimTime::ZERO, r.deadline);
        }

        AdaptiveBroadcast {
            id,
            neighbors,
            all_processes: all,
            topology: Arc::new(topology),
            topology_version: 1,
            merged_versions: BTreeMap::new(),
            peers,
            links,
            deadlines,
            emission: EmissionCache::default(),
            mirrors: BTreeMap::new(),
            member_scratch: (Vec::new(), Vec::new()),
            self_up: 0,
            my_seq: 0,
            next_heartbeat: SimTime::ZERO,
            next_self_tick: SimTime::new(params.self_tick_period),
            next_bcast_seq: 0,
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            errors: 0,
            heartbeats_sent: 0,
            audit: ProtocolAudit::default(),
            params,
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }

    /// The currently known topology `Λ_k`.
    pub fn known_topology(&self) -> &Topology {
        &self.topology
    }

    /// Current estimate of a process's crash probability (posterior
    /// mean), or `None` for unknown processes.
    pub fn estimated_crash(&self, p: ProcessId) -> Option<Probability> {
        self.peers.get(&p).map(|r| r.estimate.beliefs().mean())
    }

    /// Current estimate of a link's loss probability (posterior mean), or
    /// `None` for unknown links.
    pub fn estimated_loss(&self, l: LinkId) -> Option<Probability> {
        self.links.get(&l).map(|e| e.beliefs().mean())
    }

    /// The full estimate (posterior + distortion) for a process.
    pub fn process_estimate(&self, p: ProcessId) -> Option<&Estimate> {
        self.peers.get(&p).map(|r| &r.estimate)
    }

    /// The full estimate for a link.
    pub fn link_estimate(&self, l: LinkId) -> Option<&Estimate> {
        self.links.get(&l)
    }

    /// Heartbeats sent so far.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent
    }

    /// Malformed or un-forwardable messages ignored so far.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Returns `true` once `Λ_k` spans the whole membership `Π` — the
    /// precondition for building spanning trees.
    pub fn topology_complete(&self) -> bool {
        self.topology.process_count() == self.all_processes.len() && self.topology.is_connected()
    }

    /// Snapshot of the approximated knowledge `(Λ_k, C_k)` as scalar
    /// probabilities (posterior means), ready for MRT construction.
    pub fn knowledge_snapshot(&self) -> NetworkKnowledge {
        let mut config = Configuration::new();
        for (&p, record) in &self.peers {
            config.set_crash(p, record.estimate.beliefs().mean());
        }
        for (&l, estimate) in &self.links {
            config.set_loss(l, estimate.beliefs().mean());
        }
        NetworkKnowledge::exact(Topology::clone(&self.topology), config)
    }

    /// Full-view snapshot (the [`ViewMode::Full`]
    /// executable-specification path, also used to seed tests). Shares
    /// the same copy-on-write cache as delta emission: entries whose
    /// estimate did not move since the last emission are `Arc`-shared,
    /// not re-cloned, so full-view mode pays per *changed* entry too.
    fn build_full_view(&mut self) -> Arc<View> {
        self.sync_view_cache();
        Arc::clone(&self.emission.view)
    }

    /// Brings the cached view up to date copy-on-write: only entries
    /// whose [`Estimate::version`] moved since the last sync are
    /// touched, and each such entry records the new generation as its
    /// last-change generation (the key deltas are filtered by).
    fn sync_view_cache(&mut self) {
        self.emission.generation += 1;
        let g = self.emission.generation;
        if self.emission.proc_sync.is_empty() {
            // First emission: build the cache outright.
            self.emission.topo_change_gen = g;
            self.emission.proc_sync = self
                .peers
                .values()
                .map(|r| (r.estimate.version(), g))
                .collect();
            self.emission.link_sync = self.links.values().map(|e| (e.version(), g)).collect();
            self.emission.view = Arc::new(View {
                generation: g,
                topology_version: self.topology_version,
                topology: Arc::clone(&self.topology),
                processes: self
                    .peers
                    .iter()
                    .map(|(&p, r)| (p, Arc::new(r.estimate.clone())))
                    .collect(),
                links: self
                    .links
                    .iter()
                    .map(|(&l, e)| (l, Arc::new(e.clone())))
                    .collect(),
            });
            return;
        }
        // `make_mut` clones the view only if a previous emission's frame
        // is still alive somewhere; entry clones are Arc-cheap either
        // way.
        let view = Arc::make_mut(&mut self.emission.view);
        view.generation = g;
        if view.topology_version != self.topology_version {
            view.topology_version = self.topology_version;
            view.topology = Arc::clone(&self.topology);
            self.emission.topo_change_gen = g;
        }
        // Processes: the membership is fixed, so the cache walks in
        // lockstep with the peer map.
        for ((record, entry), sync) in self
            .peers
            .values()
            .zip(view.processes.iter_mut())
            .zip(self.emission.proc_sync.iter_mut())
        {
            let v = record.estimate.version();
            if v != sync.0 {
                entry.1 = Arc::new(record.estimate.clone());
                *sync = (v, g);
            }
        }
        // Links: a monotone-growing sorted set — lockstep walk with
        // insertion for newly learned links.
        for (i, (&l, e)) in self.links.iter().enumerate() {
            if i == view.links.len() || view.links[i].0 != l {
                view.links.insert(i, (l, Arc::new(e.clone())));
                self.emission.link_sync.insert(i, (e.version(), g));
            } else {
                let v = e.version();
                let sync = &mut self.emission.link_sync[i];
                if v != sync.0 {
                    view.links[i].1 = Arc::new(e.clone());
                    *sync = (v, g);
                }
            }
        }
    }

    /// Assembles the delta of entries changed since `base` from the
    /// (already synced) view cache. Delta entries are `Arc`-shared with
    /// the cached view — assembling a delta clones handles, never
    /// estimates, so the former sync-then-assemble double-clone per
    /// changed entry is gone.
    fn build_delta(&self, base: u64) -> Arc<DeltaView> {
        let view = &self.emission.view;
        Arc::new(DeltaView {
            generation: self.emission.generation,
            base,
            topology_version: self.topology_version,
            processes: view
                .processes
                .iter()
                .zip(&self.emission.proc_sync)
                .filter(|&(_, &(_, changed))| changed > base)
                .map(|((p, e), _)| (*p, Arc::clone(e)))
                .collect(),
            links: view
                .links
                .iter()
                .zip(&self.emission.link_sync)
                .filter(|&(_, &(_, changed))| changed > base)
                .map(|((l, e), _)| (*l, Arc::clone(e)))
                .collect(),
        })
    }

    /// The latest view generation we merged from `n` — the ack we
    /// piggyback on heartbeats to `n` (0 = nothing merged yet).
    fn ack_for(&self, n: ProcessId) -> u64 {
        self.mirrors.get(&n).map_or(0, |m| m.generation)
    }

    /// Folds pending link evidence into the estimator and clears the
    /// counters.
    ///
    /// Canonical flush order — the contract every batched path relies on:
    /// all pending successes first (`increase_reliability(up)`), then all
    /// pending losses (`decrease_reliability(down)`). Because the flush
    /// ends on the decrease, the estimator's undo checkpoint still covers
    /// it, so a subsequent `undo_decrease(down)` with the same factor
    /// reverts it bit-exactly.
    fn flush_link_evidence(estimate: &mut Estimate, up: &mut u32, down: &mut u32) {
        if *up > 0 {
            estimate.beliefs_mut().increase_reliability(*up);
            *up = 0;
        }
        if *down > 0 {
            estimate.beliefs_mut().decrease_reliability(*down);
            *down = 0;
        }
    }

    /// Event 1 bookkeeping for the link to the heartbeat's sender.
    ///
    /// Link evidence (the receipt itself, inferred gap losses, and
    /// over-suspicion corrections) accumulates in the peer's pending
    /// counters and is folded into the Bayesian estimator in batches of
    /// [`AdaptiveParams::evidence_batch`] observations — so in the
    /// steady state the link entry's version (and hence the delta view)
    /// only moves once per batch, not once per heartbeat. Reads of the
    /// link estimate lag the newest `evidence_batch - 1` observations by
    /// design.
    fn reconcile_link(&mut self, from: ProcessId, seq: u64, now: SimTime) {
        let link = LinkId::new(self.id, from).expect("sender differs from self");
        let Some(record) = self.peers.get_mut(&from) else {
            return;
        };
        let gap = seq.saturating_sub(record.last_seq);
        if gap == 0 {
            // Duplicate or reordered heartbeat: estimates were already
            // merged for a newer one; skip bookkeeping.
            return;
        }
        let missed = (gap - 1) as u32;

        let delta = self.params.heartbeat_period;
        let suspected = record.suspected;
        let (adjust_pos, adjust_neg): (u32, u32) = match self.params.reconcile {
            ReconcileMode::SeqGap => {
                // Misses during my own downtime are nobody's fault.
                let excused = u32::try_from(record.downtime_since_receipt / delta.max(1))
                    .unwrap_or(u32::MAX)
                    .min(missed);
                let blamable = missed - excused;
                if suspected >= blamable {
                    (suspected - blamable, 0)
                } else {
                    (0, blamable - suspected)
                }
            }
            ReconcileMode::PaperLiteral => {
                let gap32 = u32::try_from(gap).unwrap_or(u32::MAX);
                if suspected >= gap32 {
                    (suspected - gap32, 0)
                } else {
                    (0, gap32 - suspected)
                }
            }
        };

        if let Some(estimate) = self.links.get_mut(&link) {
            match self.params.link_blame {
                LinkBlame::OnReconcile => {
                    // Blame exactly the proven losses; suspicions never
                    // touched the link.
                    let blamable = match self.params.reconcile {
                        ReconcileMode::SeqGap => {
                            let excused =
                                u32::try_from(record.downtime_since_receipt / delta.max(1))
                                    .unwrap_or(u32::MAX)
                                    .min(missed);
                            missed - excused
                        }
                        ReconcileMode::PaperLiteral => missed,
                    };
                    record.link_down = record.link_down.saturating_add(blamable);
                }
                LinkBlame::OnTimeout => {
                    // Suspicions already charged the link; settle the
                    // difference.
                    if adjust_pos > 0 {
                        match self.params.correction {
                            CorrectionMode::Exact => {
                                // Unfounded suspicions that are still
                                // pending cancel as integers — exact by
                                // construction. Only suspicions already
                                // folded into the estimator need an
                                // estimator-level undo, on the settled
                                // (flushed) state.
                                let cancel = adjust_pos.min(record.link_down);
                                record.link_down -= cancel;
                                let undo = adjust_pos - cancel;
                                if undo > 0 {
                                    Self::flush_link_evidence(
                                        estimate,
                                        &mut record.link_up,
                                        &mut record.link_down,
                                    );
                                    estimate.beliefs_mut().undo_decrease(undo);
                                }
                            }
                            CorrectionMode::Bayes => {
                                record.link_up = record.link_up.saturating_add(adjust_pos);
                            }
                        }
                    }
                    record.link_down = record.link_down.saturating_add(adjust_neg);
                }
            }
            // The received heartbeat itself is a success observation.
            if self.params.reconcile == ReconcileMode::SeqGap {
                record.link_up = record.link_up.saturating_add(1);
            }
            if record.link_up.saturating_add(record.link_down) >= self.params.evidence_batch.max(1)
            {
                Self::flush_link_evidence(estimate, &mut record.link_up, &mut record.link_down);
            }
        }

        // Line 23: repeated over-suspicion means the timeout is too tight.
        if self.params.timeout_growth && adjust_pos > 1 {
            record.timeout += delta;
        }
        record.suspected = 0;
        record.last_seq = seq;
        record.downtime_since_receipt = 0;
        let at = now + record.timeout;
        if record.deadline != at {
            record.deadline = at;
            self.deadlines.insert(now, at);
        }
    }

    /// Topology part of a view merge: apply only when the sender's
    /// version moved, bump our own version only when `Λ_k` actually
    /// grows.
    fn merge_topology(&mut self, from: ProcessId, version: u64, topology: &Topology) {
        let last = self.merged_versions.get(&from).copied().unwrap_or(0);
        if version > last {
            let before = (self.topology.process_count(), self.topology.link_count());
            let merged = Arc::make_mut(&mut self.topology);
            merged.merge(topology);
            if (merged.process_count(), merged.link_count()) != before {
                self.topology_version += 1;
            }
            self.merged_versions.insert(from, version);
        }
    }

    /// Merges the sender's full view — the legacy [`ViewMode::Full`]
    /// data flow (lines 26–32), evaluating every entry through its own
    /// map lookup with eager deadline maintenance. Kept verbatim as the
    /// executable specification the delta path is property-tested
    /// against.
    fn merge_view_legacy(&mut self, from: ProcessId, view: &View, now: SimTime) {
        self.merge_topology(from, view.topology_version, &view.topology);

        let mut adopted_count = 0u64;
        let mut bound_violations = 0u64;

        // Process estimates: lines 26–27, selectBestEstimate for every
        // process. The sender's self-estimate has distortion 0 and is
        // always adopted.
        for (p, theirs) in &view.processes {
            if *p == self.id {
                continue; // my own estimate is never overwritten
            }
            if let Some(record) = self.peers.get_mut(p) {
                if record.estimate.adopt_if_better(theirs) {
                    adopted_count += 1;
                    if record.estimate.distortion() == Distortion::ZERO {
                        bound_violations += 1;
                    }
                    // Adoption counts as an update of C_k[p_i] (Event 2's
                    // "not updated … in the last ∆" clock restarts).
                    let at = now + record.timeout;
                    if record.deadline != at {
                        record.deadline = at;
                        self.deadlines.insert(now, at);
                    }
                }
            }
        }

        // Link estimates: lines 28–32 — select best for known links,
        // adopt (distortion + 1) for new ones. My own direct links keep
        // their first-hand estimates (strict distortion comparison).
        for (l, theirs) in &view.links {
            match self.links.get_mut(l) {
                Some(mine) => {
                    if mine.adopt_if_better(theirs) {
                        adopted_count += 1;
                        if mine.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                    }
                }
                None => {
                    let mut adopted = Estimate::unknown(self.params.intervals);
                    adopted.adopt(theirs);
                    adopted_count += 1;
                    if adopted.distortion() == Distortion::ZERO {
                        bound_violations += 1;
                    }
                    self.links.insert(*l, adopted);
                    let merged = Arc::make_mut(&mut self.topology);
                    if !merged.contains_link(*l) {
                        merged.insert_link(*l);
                        self.topology_version += 1;
                    }
                }
            }
        }

        let sa = self.audit.sender(from);
        sa.offered += (view.processes.len() + view.links.len()) as u64;
        sa.adopted += adopted_count;
        sa.bound_violations += bound_violations;
    }

    /// Delta-mode handling of a *full* view: same merge as the legacy
    /// path (every entry evaluated), plus the mirror rebuild that arms
    /// future delta merges. Full views are rare in steady state (first
    /// contact, topology changes, ack gaps), so the per-entry lookups
    /// are acceptable here.
    fn merge_full_view(&mut self, from: ProcessId, view: &Arc<View>, now: SimTime) {
        self.merge_topology(from, view.topology_version, &view.topology);

        let mut adopted_count = 0u64;
        let mut bound_violations = 0u64;

        let mut mirror = NeighborMirror {
            generation: view.generation,
            topology_version: view.topology_version,
            latest: HeartbeatView::Full(Arc::clone(view)),
            processes: Vec::with_capacity(view.processes.len()),
            links: Vec::with_capacity(view.links.len()),
            latest_procs: (0..view.processes.len() as u32).collect(),
            latest_links: (0..view.links.len() as u32).collect(),
        };
        for (i, (p, theirs)) in view.processes.iter().enumerate() {
            let (my_version, adopted) = if *p == self.id {
                (0, false)
            } else if let Some(record) = self.peers.get_mut(p) {
                let adopted = record.estimate.adopt_if_better(theirs);
                if adopted {
                    adopted_count += 1;
                    if record.estimate.distortion() == Distortion::ZERO {
                        bound_violations += 1;
                    }
                    let at = now + record.timeout;
                    if record.deadline != at {
                        record.deadline = at;
                        self.deadlines.insert(now, at);
                    }
                }
                (record.estimate.version(), adopted)
            } else {
                (0, false)
            };
            mirror.processes.push(MirrorEntry {
                key: *p,
                value: MirrorValue::Latest(i as u32),
                my_version,
                adopted,
            });
        }
        for (i, (l, theirs)) in view.links.iter().enumerate() {
            let (adopted, my_version) = match self.links.get_mut(l) {
                Some(mine) => {
                    let adopted = mine.adopt_if_better(theirs);
                    if adopted {
                        adopted_count += 1;
                        if mine.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                    }
                    (adopted, mine.version())
                }
                None => {
                    let mut fresh = Estimate::unknown(self.params.intervals);
                    fresh.adopt(theirs);
                    adopted_count += 1;
                    if fresh.distortion() == Distortion::ZERO {
                        bound_violations += 1;
                    }
                    let v = fresh.version();
                    self.links.insert(*l, fresh);
                    let merged = Arc::make_mut(&mut self.topology);
                    if !merged.contains_link(*l) {
                        merged.insert_link(*l);
                        self.topology_version += 1;
                    }
                    (true, v)
                }
            };
            mirror.links.push(MirrorEntry {
                key: *l,
                value: MirrorValue::Latest(i as u32),
                my_version,
                adopted,
            });
        }
        self.mirrors.insert(from, mirror);

        let sa = self.audit.sender(from);
        sa.offered += (view.processes.len() + view.links.len()) as u64;
        sa.adopted += adopted_count;
        sa.bound_violations += bound_violations;
    }

    /// Merges a delta view: evaluates the changed entries, re-evaluates
    /// entries our own side touched since their last evaluation, and
    /// handles everything else with the exact fast paths (deadline
    /// restart for previously adopted entries, nothing for previously
    /// rejected ones). See the module docs for why this is bit-identical
    /// to merging the sender's full view.
    fn merge_delta_view(&mut self, from: ProcessId, delta: &Arc<DeltaView>, now: SimTime) {
        let Some(mirror) = self.mirrors.get_mut(&from) else {
            // No full view merged yet: the delta has no base to apply
            // to. A conformant sender never does this (it sends full
            // views until we ack one); drop defensively.
            self.errors += 1;
            return;
        };
        if delta.base > mirror.generation || delta.topology_version != mirror.topology_version {
            // The delta extends a state we never reached (or a topology
            // we have not merged). Cannot happen with a conformant
            // sender; skip the merge without advancing the ack so the
            // sender's next delta (or full view) still applies.
            self.errors += 1;
            return;
        }

        let mut adopted_count = 0u64;
        let mut bound_violations = 0u64;

        // Swap in the new frame; the old one stays alive through this
        // merge for value resolution and the materialization pass.
        let old_frame =
            std::mem::replace(&mut mirror.latest, HeartbeatView::Delta(Arc::clone(delta)));
        // Member buffers are recycled through a scratch pair, so steady
        // state allocates nothing here.
        let mut new_procs: Vec<u32> = std::mem::take(&mut self.member_scratch.0);
        let mut new_links: Vec<u32> = std::mem::take(&mut self.member_scratch.1);
        new_procs.clear();
        new_links.clear();

        let id = self.id;
        let peers = &mut self.peers;
        let deadlines = &mut self.deadlines;
        {
            let mut di = 0usize; // cursor into the (sorted) delta entries
            let mut peers_it = peers.iter_mut().peekable();
            for (ei, entry) in mirror.processes.iter_mut().enumerate() {
                while di < delta.processes.len() && delta.processes[di].0 < entry.key {
                    di += 1;
                }
                let changed = di < delta.processes.len() && delta.processes[di].0 == entry.key;
                if changed {
                    entry.value = MirrorValue::Latest(di as u32);
                    new_procs.push(ei as u32);
                }
                if entry.key == id {
                    // My own estimate is never overwritten; the mirror
                    // was just kept current above.
                    continue;
                }
                // Advance the (sorted) peer cursor to this entry.
                let record = loop {
                    match peers_it.peek_mut() {
                        Some((&p, _)) if p < entry.key => {
                            peers_it.next();
                        }
                        Some((&p, _)) if p == entry.key => {
                            break Some(peers_it.next().expect("peeked").1)
                        }
                        _ => break None,
                    }
                };
                let Some(record) = record else { continue };
                if changed {
                    // The sender's entry changed: evaluate, exactly as a
                    // full view would.
                    let theirs = &delta.processes[di].1;
                    let adopted = record.estimate.adopt_if_better(theirs);
                    if adopted {
                        adopted_count += 1;
                        if record.estimate.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                        let at = now + record.timeout;
                        if record.deadline != at {
                            record.deadline = at;
                            deadlines.insert(now, at);
                        }
                    }
                    entry.adopted = adopted;
                    entry.my_version = record.estimate.version();
                } else if record.estimate.version() != entry.my_version {
                    // Our side changed since the last evaluation
                    // (suspicion-scan distortion drift, adoption from
                    // another neighbor, recovery): re-evaluate against
                    // the mirrored value, as a full view would.
                    let theirs = match &entry.value {
                        MirrorValue::Inline(e) => e,
                        MirrorValue::Latest(idx) => frame_process(&old_frame, *idx),
                    };
                    let adopted = record.estimate.adopt_if_better(theirs);
                    if adopted {
                        adopted_count += 1;
                        if record.estimate.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                        let at = now + record.timeout;
                        if record.deadline != at {
                            record.deadline = at;
                            deadlines.insert(now, at);
                        }
                    }
                    entry.adopted = adopted;
                    entry.my_version = record.estimate.version();
                } else if entry.adopted {
                    // Unchanged on both sides, last evaluation adopted:
                    // a full view would re-adopt the bitwise identical
                    // value — a value no-op whose only effect is
                    // restarting the entry's Event-2 staleness clock.
                    let at = now + record.timeout;
                    if record.deadline != at {
                        record.deadline = at;
                        deadlines.insert(now, at);
                    }
                }
                // else: unchanged on both sides and last evaluation
                // rejected — a full view would reject again; skip.
            }
        }

        let links = &mut self.links;
        {
            let mut di = 0usize;
            let mut links_it = links.iter_mut().peekable();
            for (ei, entry) in mirror.links.iter_mut().enumerate() {
                while di < delta.links.len() && delta.links[di].0 < entry.key {
                    di += 1;
                }
                let changed = di < delta.links.len() && delta.links[di].0 == entry.key;
                if changed {
                    entry.value = MirrorValue::Latest(di as u32);
                    new_links.push(ei as u32);
                }
                let mine = loop {
                    match links_it.peek_mut() {
                        Some((&l, _)) if l < entry.key => {
                            links_it.next();
                        }
                        Some((&l, _)) if l == entry.key => {
                            break Some(links_it.next().expect("peeked").1)
                        }
                        _ => break None,
                    }
                };
                // Every mirrored link exists locally: the full-view
                // merge that built the mirror inserted it.
                let Some(mine) = mine else { continue };
                if changed {
                    let adopted = mine.adopt_if_better(&delta.links[di].1);
                    if adopted {
                        adopted_count += 1;
                        if mine.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                    }
                    entry.adopted = adopted;
                    entry.my_version = mine.version();
                } else if mine.version() != entry.my_version {
                    let theirs = match &entry.value {
                        MirrorValue::Inline(e) => e,
                        MirrorValue::Latest(idx) => frame_link(&old_frame, *idx),
                    };
                    let adopted = mine.adopt_if_better(theirs);
                    if adopted {
                        adopted_count += 1;
                        if mine.distortion() == Distortion::ZERO {
                            bound_violations += 1;
                        }
                    }
                    entry.adopted = adopted;
                    entry.my_version = mine.version();
                }
                // Unchanged on both sides: links carry no Event-2
                // clock, and re-adoption would be a bitwise value
                // no-op, so there is nothing to replay.
            }
        }

        // Materialize what the old frame still backed before dropping it.
        materialize_dropped(
            &mut mirror.processes,
            &old_frame,
            |f, i| Arc::clone(frame_process(f, i)),
            &mirror.latest_procs,
            &new_procs,
        );
        materialize_dropped(
            &mut mirror.links,
            &old_frame,
            |f, i| Arc::clone(frame_link(f, i)),
            &mirror.latest_links,
            &new_links,
        );
        self.member_scratch.0 = std::mem::replace(&mut mirror.latest_procs, new_procs);
        self.member_scratch.1 = std::mem::replace(&mut mirror.latest_links, new_links);
        mirror.generation = delta.generation;

        let sa = self.audit.sender(from);
        sa.offered += (delta.processes.len() + delta.links.len()) as u64;
        sa.adopted += adopted_count;
        sa.bound_violations += bound_violations;
    }
}

impl AdaptiveBroadcast {
    /// Swaps the suspicion schedule for the exact (bucket-disabled)
    /// queue, re-registering every current peer deadline. Equivalence
    /// tests run one scenario per mode and compare the reports.
    #[cfg(test)]
    fn use_exact_deadlines(&mut self) {
        let mut exact = DeadlineQueue::exact();
        for (&p, r) in &self.peers {
            if p != self.id {
                exact.insert(SimTime::ZERO, r.deadline);
            }
        }
        self.deadlines = exact;
    }

    /// (Re)arms [`Self::SUSPICION`] at the earliest scheduled scan
    /// time. Superseded times fire scans that find nothing due — a
    /// no-op — so arming never needs to prune.
    fn arm_suspicion(&mut self, actions: &mut Actions) {
        if let Some(at) = self.deadlines.earliest() {
            actions.set_timer(Self::SUSPICION, at);
        }
    }

    /// Heartbeat emission (lines 14–17): one view snapshot, one sequenced
    /// heartbeat per neighbor — full or delta per
    /// [`AdaptiveParams::heartbeat_views`] and per-neighbor ack state.
    fn emit_heartbeats(&mut self, now: SimTime, actions: &mut Actions) {
        if now < self.next_heartbeat {
            // Fired early (e.g. a stale deadline): keep the chain alive.
            actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
            return;
        }
        self.my_seq += 1;
        match self.params.heartbeat_views {
            ViewMode::Full => {
                let view = self.build_full_view();
                for i in 0..self.neighbors.len() {
                    let n = self.neighbors[i];
                    actions.send(
                        n,
                        Message::Heartbeat(HeartbeatMessage {
                            seq: self.my_seq,
                            ack: 0,
                            view: HeartbeatView::Full(Arc::clone(&view)),
                        }),
                    );
                    self.heartbeats_sent += 1;
                }
            }
            ViewMode::Delta => {
                self.sync_view_cache();
                // Deltas are cached per distinct base: in steady state
                // every neighbor acked the previous emission and one
                // assembly serves them all.
                let mut delta_cache: Vec<(u64, Arc<DeltaView>)> = Vec::new();
                for i in 0..self.neighbors.len() {
                    let n = self.neighbors[i];
                    let acked = self.emission.neighbors.get(&n).map_or(0, |st| st.acked);
                    // Full-view fallback: first contact (nothing acked
                    // yet), or the neighbor's last merge predates our
                    // latest topology change — its mirror may carry the
                    // old topology, which deltas cannot update.
                    let full = acked < self.emission.topo_change_gen.max(1);
                    let view = if full {
                        HeartbeatView::Full(Arc::clone(&self.emission.view))
                    } else {
                        let base = acked;
                        let delta = match delta_cache.iter().find(|(b, _)| *b == base) {
                            Some((_, d)) => Arc::clone(d),
                            None => {
                                let d = self.build_delta(base);
                                delta_cache.push((base, Arc::clone(&d)));
                                d
                            }
                        };
                        HeartbeatView::Delta(delta)
                    };
                    actions.send(
                        n,
                        Message::Heartbeat(HeartbeatMessage {
                            seq: self.my_seq,
                            ack: self.ack_for(n),
                            view,
                        }),
                    );
                    self.heartbeats_sent += 1;
                }
            }
        }
        // `max(1)`: the params fields are pub, and a period of 0 must
        // degrade to once per tick (the legacy behavior), not a
        // same-tick timer livelock.
        self.next_heartbeat = now + self.params.heartbeat_period.max(1);
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
    }

    /// Event 2: per-peer staleness checks over every peer whose deadline
    /// has passed — one iteration of the peer map in both view modes
    /// (cheap: most peers fail the `now < deadline` test and are
    /// skipped; the deadline *schedule* only decides when this scan
    /// fires, see [`DeadlineQueue`]).
    fn run_suspicion_scan(&mut self, now: SimTime, actions: &mut Actions) {
        let is_neighbor: BTreeSet<ProcessId> = self.neighbors.iter().copied().collect();
        let blame_link_now = self.params.link_blame == LinkBlame::OnTimeout
            || self.params.reconcile == ReconcileMode::PaperLiteral;
        let mut suspected_neighbors: Vec<ProcessId> = Vec::new();

        self.deadlines.expire(now);
        for (&p, record) in self.peers.iter_mut() {
            if p == self.id {
                continue;
            }
            if now < record.deadline {
                // A bucketed sentinel may have just been consumed up to
                // one bucket before this deadline; re-register it (now
                // near, hence exact) so it still fires a scan on time.
                self.deadlines.rearm(now, record.deadline);
                continue;
            }
            if is_neighbor.contains(&p) {
                // Lines 36–38: suspect the neighbor and decrease its
                // reliability belief. The suspicion is *first-hand*
                // evidence observed at network distance 1, so the
                // estimate's distortion is pinned there — otherwise stale
                // pre-crash copies echoing back from third parties (with
                // lower distortion) would keep overwriting the fresh
                // negative evidence. See DESIGN.md §4.
                record.suspected += 1;
                record.estimate.beliefs_mut().decrease_reliability(1);
                record.estimate.set_distortion(Distortion::finite(1));
                suspected_neighbors.push(p);
            } else {
                // Line 35: remote knowledge gets distorted with time.
                record
                    .estimate
                    .set_distortion(record.estimate.distortion().incremented());
            }
            let at = now + record.timeout;
            if record.deadline != at {
                record.deadline = at;
                self.deadlines.insert(now, at);
            }
        }

        // Line 39 (paper mode): the link to a suspected neighbor is
        // charged as well — batched like every other link observation.
        if blame_link_now {
            let batch = self.params.evidence_batch.max(1);
            for p in suspected_neighbors {
                let link = LinkId::new(self.id, p).expect("neighbor differs");
                if let Some(estimate) = self.links.get_mut(&link) {
                    let record = self.peers.get_mut(&p).expect("suspected peer exists");
                    record.link_down = record.link_down.saturating_add(1);
                    if record.link_up.saturating_add(record.link_down) >= batch {
                        Self::flush_link_evidence(
                            estimate,
                            &mut record.link_up,
                            &mut record.link_down,
                        );
                    }
                }
            }
        }
        self.arm_suspicion(actions);
    }

    /// Event 3: my own uptime is evidence of my reliability — accumulated
    /// and folded in batches so the self entry (which every neighbor
    /// adopts and re-gossips) only changes once per
    /// [`AdaptiveParams::evidence_batch`] periods.
    fn self_tick(&mut self, now: SimTime, actions: &mut Actions) {
        if now < self.next_self_tick {
            actions.set_timer(Self::SELF_TICK, self.next_self_tick);
            return;
        }
        if let Some(me) = self.peers.get_mut(&self.id) {
            self.self_up = self.self_up.saturating_add(1);
            if self.self_up >= self.params.evidence_batch.max(1) {
                me.estimate.beliefs_mut().increase_reliability(self.self_up);
                self.self_up = 0;
            }
        }
        self.next_self_tick = now + self.params.self_tick_period.max(1);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ProcessId,
        message: Message,
        actions: &mut Actions,
    ) {
        match message {
            Message::Heartbeat(HeartbeatMessage { seq, ack, view }) => {
                if !self.neighbors.contains(&from) {
                    self.errors += 1;
                    return;
                }
                // Freshness is decided against the pre-reconcile
                // sequence state (reconciliation advances `last_seq`).
                let fresh = self.peers.get(&from).is_some_and(|r| seq > r.last_seq);
                // Event 1: reconcile the direct link, then merge the view.
                self.reconcile_link(from, seq, now);
                if self.params.heartbeat_views == ViewMode::Delta {
                    // The sender's ack of *our* emissions anchors the
                    // base of our future deltas to it. Hardened against
                    // lying senders two ways: acks naming a generation
                    // we never emitted are rejected (and counted), and
                    // the freshest heartbeat's ack is taken *verbatim*
                    // rather than max-merged — honest acks are monotone
                    // in `seq`, so for conformant senders this is the
                    // old behavior bit for bit, while a within-range
                    // forged ack gets repaired by the liar's next
                    // honest heartbeat instead of wedging delta
                    // emission to that neighbor forever.
                    let generation = self.emission.generation;
                    let st = self.emission.neighbors.entry(from).or_default();
                    if ack > generation {
                        self.audit.future_acks_rejected += 1;
                    } else if fresh {
                        st.acked = ack;
                    }
                }
                match (&view, self.params.heartbeat_views) {
                    (HeartbeatView::Full(v), ViewMode::Full) => {
                        self.merge_view_legacy(from, v, now)
                    }
                    (HeartbeatView::Full(v), ViewMode::Delta) => self.merge_full_view(from, v, now),
                    (HeartbeatView::Delta(d), ViewMode::Delta) => {
                        self.merge_delta_view(from, d, now)
                    }
                    (HeartbeatView::Delta(_), ViewMode::Full) => {
                        // A full-view node keeps no mirrors and cannot
                        // apply deltas. (Mixed systems never produce
                        // this: a full-view node acks 0, so delta-mode
                        // senders keep sending it full views.)
                        self.errors += 1;
                    }
                }
                // Receipt and adoption push peer deadlines around; keep
                // the suspicion timer at the new earliest one.
                self.arm_suspicion(actions);
            }
            Message::Data(data) => {
                if !self.seen.insert(data.id) {
                    return;
                }
                self.delivered.push((data.id, data.payload.clone()));
                actions.deliver(data.id, data.payload.clone());
                if propagate(
                    self.id,
                    data.id,
                    &data.payload,
                    &data.tree,
                    self.params.target_reliability,
                    actions,
                )
                .is_err()
                {
                    self.errors += 1;
                }
            }
            _ => {}
        }
    }

    fn on_recovery(&mut self, now: SimTime, down_ticks: u64, actions: &mut Actions) {
        // Event 4: a crash lasting n × ∆tick is n failure observations.
        let n =
            u32::try_from((down_ticks / self.params.self_tick_period).max(1)).unwrap_or(u32::MAX);
        if let Some(me) = self.peers.get_mut(&self.id) {
            // Settle any pending uptime evidence first (canonical order:
            // successes precede failures), then charge the crash.
            if self.self_up > 0 {
                me.estimate.beliefs_mut().increase_reliability(self.self_up);
                self.self_up = 0;
            }
            me.estimate.beliefs_mut().decrease_reliability(n);
        }
        // My silence was my fault, not my neighbors': excuse the misses I
        // caused and give everyone a fresh grace period.
        for (&p, record) in self.peers.iter_mut() {
            if p == self.id {
                continue;
            }
            record.downtime_since_receipt += down_ticks;
            let at = now + record.timeout;
            if record.deadline != at {
                record.deadline = at;
                self.deadlines.insert(now, at);
            }
        }
        self.next_self_tick = now + self.params.self_tick_period.max(1);
        self.next_heartbeat = now; // announce recovery promptly
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
        self.arm_suspicion(actions);
    }
}

impl Protocol for AdaptiveBroadcast {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, actions: &mut Actions) {
        actions.set_timer(Self::HEARTBEAT, self.next_heartbeat);
        actions.set_timer(Self::SELF_TICK, self.next_self_tick);
        self.arm_suspicion(actions);
    }

    fn on_event(&mut self, now: SimTime, event: Event, actions: &mut Actions) {
        match event {
            Event::Message { from, message } => self.on_message(now, from, message, actions),
            Event::Timer(Self::HEARTBEAT) => self.emit_heartbeats(now, actions),
            Event::Timer(Self::SUSPICION) => self.run_suspicion_scan(now, actions),
            Event::Timer(Self::SELF_TICK) => self.self_tick(now, actions),
            Event::Timer(_) => {}
            Event::Recovery { down_ticks } => self.on_recovery(now, down_ticks, actions),
            Event::Broadcast(payload) => {
                if self.broadcast(now, payload, actions).is_err() {
                    self.errors += 1;
                }
            }
            // Corruption windows are consumed by the Adversary wrapper;
            // the honest protocol never lies.
            Event::Corrupt { .. } => {}
        }
    }

    fn broadcast(
        &mut self,
        _now: SimTime,
        payload: Payload,
        actions: &mut Actions,
    ) -> Result<BroadcastId, CoreError> {
        if !self.topology_complete() {
            return Err(CoreError::KnowledgeIncomplete);
        }
        let knowledge = self.knowledge_snapshot();
        let tree = knowledge.reliability_tree(self.id)?;
        let wire = Arc::new(tree.to_wire());
        let id = BroadcastId {
            origin: self.id,
            seq: self.next_bcast_seq,
        };
        self.next_bcast_seq += 1;
        self.seen.insert(id);
        propagate(
            self.id,
            id,
            &payload,
            &wire,
            self.params.target_reliability,
            actions,
        )?;
        self.delivered.push((id, payload.clone()));
        actions.deliver(id, payload);
        Ok(id)
    }

    fn delivered(&self) -> &[(BroadcastId, Payload)] {
        &self.delivered
    }

    fn audit(&self) -> ProtocolAudit {
        self.audit.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_bayes::Distortion;

    use crate::protocol::LegacyTickShim;

    type Shim = LegacyTickShim<AdaptiveBroadcast>;

    fn shim(node: AdaptiveBroadcast) -> Shim {
        LegacyTickShim::new(node)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn params() -> AdaptiveParams {
        AdaptiveParams::default()
    }

    fn line3() -> (Shim, Shim, Shim) {
        // 0 — 1 — 2.
        let all = vec![p(0), p(1), p(2)];
        (
            shim(AdaptiveBroadcast::new(
                p(0),
                all.clone(),
                vec![p(1)],
                params(),
            )),
            shim(AdaptiveBroadcast::new(
                p(1),
                all.clone(),
                vec![p(0), p(2)],
                params(),
            )),
            shim(AdaptiveBroadcast::new(p(2), all, vec![p(1)], params())),
        )
    }

    /// Runs one tick for every node, routing messages instantly.
    fn exchange(nodes: &mut [&mut Shim], now: SimTime) {
        let mut actions = Actions::new();
        let mut pending: Vec<(ProcessId, ProcessId, Message)> = Vec::new();
        for node in nodes.iter_mut() {
            node.handle_tick(now, &mut actions);
            let from = node.protocol().id();
            for (to, m) in actions.take_sends() {
                pending.push((from, to, m));
            }
        }
        for (from, to, m) in pending {
            for node in nodes.iter_mut() {
                if node.protocol().id() == to {
                    node.handle_message(now, from, m.clone(), &mut actions);
                    actions.clear();
                }
            }
        }
    }

    #[test]
    fn link_evidence_flushes_in_batches() {
        let all = vec![p(0), p(1)];
        // OnReconcile keeps suspicions off the link so the test sees
        // exactly the four receipt observations, nothing else.
        let pr = params()
            .with_evidence_batch(4)
            .with_link_blame(LinkBlame::OnReconcile);
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            pr.clone(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], pr));
        let link = LinkId::new(p(0), p(1)).unwrap();
        let initial = a.protocol().link_estimate(link).unwrap().clone();

        for t in 1..=3u64 {
            exchange(&mut [&mut a, &mut b], SimTime::new(t));
        }
        // Three receipts are still pending: the estimator has not moved.
        assert!(a
            .protocol()
            .link_estimate(link)
            .unwrap()
            .beliefs()
            .bits_eq(initial.beliefs()));

        exchange(&mut [&mut a, &mut b], SimTime::new(4));
        // The fourth receipt fills the batch: exactly one batched
        // increase_reliability(4), bit-for-bit.
        let mut expected = initial.beliefs().clone();
        expected.increase_reliability(4);
        assert!(a
            .protocol()
            .link_estimate(link)
            .unwrap()
            .beliefs()
            .bits_eq(&expected));
    }

    #[test]
    fn evidence_batch_one_reproduces_per_observation_updates() {
        let all = vec![p(0), p(1)];
        let pr = params().with_evidence_batch(1);
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            pr.clone(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], pr));
        let link = LinkId::new(p(0), p(1)).unwrap();
        let initial = a.protocol().link_estimate(link).unwrap().clone();

        exchange(&mut [&mut a, &mut b], SimTime::new(1));
        // Batch size 1 is the paper's per-receipt update, applied
        // immediately.
        let mut expected = initial.beliefs().clone();
        expected.increase_reliability(1);
        assert!(a
            .protocol()
            .link_estimate(link)
            .unwrap()
            .beliefs()
            .bits_eq(&expected));
    }

    #[test]
    fn self_uptime_evidence_flushes_in_batches() {
        let mut node = shim(AdaptiveBroadcast::new(
            p(0),
            vec![p(0)],
            vec![],
            params().with_evidence_batch(4),
        ));
        let mut actions = Actions::new();
        let initial = node.protocol().process_estimate(p(0)).unwrap().clone();
        for t in 1..=3u64 {
            node.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        assert!(node
            .protocol()
            .process_estimate(p(0))
            .unwrap()
            .beliefs()
            .bits_eq(initial.beliefs()));
        node.handle_tick(SimTime::new(4), &mut actions);
        let mut expected = initial.beliefs().clone();
        expected.increase_reliability(4);
        assert!(node
            .protocol()
            .process_estimate(p(0))
            .unwrap()
            .beliefs()
            .bits_eq(&expected));
    }

    #[test]
    fn initial_state_matches_algorithm4_initialization() {
        let node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1), p(2)], vec![p(1)], params());
        // Own estimate: distortion 0. Remote: ∞.
        assert_eq!(
            node.process_estimate(p(0)).unwrap().distortion(),
            Distortion::ZERO
        );
        assert!(node
            .process_estimate(p(2))
            .unwrap()
            .distortion()
            .is_infinite());
        // Direct links at distortion 0; only those exist.
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        assert_eq!(
            node.link_estimate(l01).unwrap().distortion(),
            Distortion::ZERO
        );
        assert!(node
            .link_estimate(LinkId::new(p(1), p(2)).unwrap())
            .is_none());
        assert!(!node.topology_complete());
    }

    #[test]
    fn start_arms_all_three_timers() {
        let mut node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1)], vec![p(1)], params());
        let mut actions = Actions::new();
        node.on_start(SimTime::ZERO, &mut actions);
        let armed: Vec<TimerId> = actions.timer_ops().iter().map(|&(t, _)| t).collect();
        assert!(armed.contains(&AdaptiveBroadcast::HEARTBEAT));
        assert!(armed.contains(&AdaptiveBroadcast::SUSPICION));
        assert!(armed.contains(&AdaptiveBroadcast::SELF_TICK));
        // The suspicion timer sits at the initial grace deadline 2δ + 1.
        let delta = params().heartbeat_period;
        assert!(actions
            .timer_ops()
            .iter()
            .any(|&(t, at)| t == AdaptiveBroadcast::SUSPICION
                && at == Some(SimTime::new(2 * delta + 1))));
    }

    #[test]
    #[should_panic(expected = "neighbor")]
    fn self_neighbor_is_rejected() {
        let _ = AdaptiveBroadcast::new(p(0), vec![p(0)], vec![p(0)], params());
    }

    #[test]
    fn topology_spreads_along_a_line() {
        let (mut a, mut b, mut c) = line3();
        // Two exchanges: a learns l12 via b's second heartbeat.
        for t in 1..=4u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        assert!(
            a.protocol().topology_complete(),
            "a's topology: {:?}",
            a.protocol().known_topology()
        );
        assert!(c.protocol().topology_complete());
        assert!(a
            .protocol()
            .known_topology()
            .contains_link(LinkId::new(p(1), p(2)).unwrap()));
    }

    #[test]
    fn reliable_heartbeats_drive_link_estimates_down() {
        let (mut a, mut b, mut c) = line3();
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        let before = a.protocol().estimated_loss(l01).unwrap().value();
        for t in 1..=60u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(before > 0.4, "uniform prior mean should start near 0.5");
        assert!(after < 0.05, "estimated loss {after} should approach 0");
        // And remote link estimates were learned through b.
        let l12 = LinkId::new(p(1), p(2)).unwrap();
        assert!(a.protocol().estimated_loss(l12).unwrap().value() < 0.2);
    }

    #[test]
    fn sender_self_estimate_is_always_adopted() {
        let (mut a, mut b, mut c) = line3();
        for t in 1..=10u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        // a's estimate of b is second-hand: distortion exactly 1.
        assert_eq!(
            a.protocol().process_estimate(p(1)).unwrap().distortion(),
            Distortion::finite(1)
        );
        // a's estimate of c traveled two hops: distortion 2.
        assert_eq!(
            a.protocol().process_estimate(p(2)).unwrap().distortion(),
            Distortion::finite(2)
        );
    }

    #[test]
    fn silence_triggers_suspicions_and_decreases_beliefs() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));

        // Warm up with healthy exchanges.
        for t in 1..=20u64 {
            exchange(&mut [&mut a, &mut b], SimTime::new(t));
        }
        let healthy = a.protocol().estimated_crash(p(1)).unwrap().value();

        // Now b goes silent; a ticks alone.
        let mut actions = Actions::new();
        for t in 21..=40u64 {
            a.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let suspected = a.protocol().estimated_crash(p(1)).unwrap().value();
        assert!(
            suspected > healthy,
            "silence must increase the crash estimate ({healthy} → {suspected})"
        );
        // Default (paper) blame mode: total silence also degrades the
        // link estimate — a dead link and a dead peer are indistinguishable
        // until a sequence number proves otherwise.
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        assert!(a.protocol().estimated_loss(l01).unwrap().value() > 0.1);
    }

    #[test]
    fn crash_only_silence_is_undone_on_the_link_after_reconcile() {
        // b never sends for a while (crashed — its seq does not advance),
        // then resumes: the link's timeout-time decreases are exactly
        // undone because no sequence gap appears.
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();
        let mut actions = Actions::new();

        // Healthy warm-up.
        for t in 1..=30u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
            }
            actions.clear();
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                a.handle_message(now, p(1), m, &mut actions);
            }
            actions.clear();
        }
        let healthy = a.protocol().estimated_loss(l01).unwrap().value();

        // b silent (crashed) for 15 periods: a suspects, link degrades.
        for t in 31..=45u64 {
            a.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let during = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(during > healthy, "{healthy} → {during}");

        // b resumes; its seq advanced by 0 while down (it sent nothing).
        b.handle_tick(SimTime::new(46), &mut actions);
        let now = SimTime::new(46);
        for (_, m) in actions.take_sends() {
            a.handle_message(now, p(1), m, &mut actions);
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            after < healthy + 0.02,
            "exact undo must clear crash-only suspicions ({healthy} → {during} → {after})"
        );
    }

    #[test]
    fn seq_gaps_blame_the_link() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();

        let mut actions = Actions::new();
        let mut drop_every = 3u64; // drop every third heartbeat b → a
        let mut dropped = 0u32;
        for t in 1..=90u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
                actions.clear();
            }
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                drop_every -= 1;
                if drop_every == 0 {
                    drop_every = 3;
                    dropped += 1;
                    continue; // lost on the wire
                }
                a.handle_message(now, p(1), m, &mut actions);
                actions.clear();
            }
        }
        assert!(dropped > 20);
        let estimated = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            (estimated - 1.0 / 3.0).abs() < 0.12,
            "loss estimate {estimated} should approach 1/3"
        );
    }

    #[test]
    fn events_3_and_4_shape_self_estimate() {
        let all = vec![p(0), p(1)];
        let mut node = shim(AdaptiveBroadcast::new(p(0), all, vec![p(1)], params()));
        let mut actions = Actions::new();
        for t in 1..=50u64 {
            node.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        let up_only = node.protocol().estimated_crash(p(0)).unwrap().value();
        assert!(up_only < 0.05, "all-up self estimate {up_only}");

        // A 50-tick outage halves the observed uptime.
        node.handle_recovery(SimTime::new(101), 50, &mut actions);
        let after_crash = node.protocol().estimated_crash(p(0)).unwrap().value();
        assert!(
            after_crash > up_only,
            "downtime must raise the crash estimate"
        );
        assert!((after_crash - 0.5).abs() < 0.15, "estimate {after_crash}");
    }

    #[test]
    fn broadcast_requires_complete_topology_then_works() {
        let (mut a, mut b, mut c) = line3();
        let mut actions = Actions::new();
        assert!(matches!(
            a.broadcast(SimTime::ZERO, Payload::from("x"), &mut actions),
            Err(CoreError::KnowledgeIncomplete)
        ));

        for t in 1..=30u64 {
            exchange(&mut [&mut a, &mut b, &mut c], SimTime::new(t));
        }
        let id = a
            .broadcast(SimTime::new(31), Payload::from("x"), &mut actions)
            .unwrap();
        assert_eq!(id.origin, p(0));
        // All copies go to the line's next hop.
        assert!(actions.sends().iter().all(|(to, _)| *to == p(1)));
        assert!(!actions.sends().is_empty());

        // Deliver one copy at b: it forwards toward c.
        let (_, m) = actions.take_sends()[0].clone();
        let mut b_actions = Actions::new();
        b.handle_message(SimTime::new(32), p(0), m, &mut b_actions);
        assert_eq!(b.protocol().delivered().len(), 1);
        assert!(b_actions.sends().iter().all(|(to, _)| *to == p(2)));
    }

    #[test]
    fn broadcast_event_failures_are_counted_not_propagated() {
        // Event::Broadcast is fire-and-forget: with incomplete topology
        // knowledge the request fails into the error counter instead of
        // returning an error the (absent) caller could handle.
        let mut node = AdaptiveBroadcast::new(p(0), vec![p(0), p(1), p(2)], vec![p(1)], params());
        let mut actions = Actions::new();
        node.on_event(
            SimTime::new(1),
            Event::Broadcast(Payload::from("too early")),
            &mut actions,
        );
        assert_eq!(node.error_count(), 1);
        assert!(actions.deliveries().is_empty());
    }

    #[test]
    fn heartbeats_from_strangers_are_ignored() {
        let all = vec![p(0), p(1), p(2)];
        let mut node = AdaptiveBroadcast::new(all[0], all.clone(), vec![p(1)], params());
        let view = node.build_full_view();
        let mut actions = Actions::new();
        node.handle_message(
            SimTime::new(1),
            p(2), // not a neighbor
            Message::Heartbeat(HeartbeatMessage {
                seq: 1,
                ack: 0,
                view: HeartbeatView::Full(view),
            }),
            &mut actions,
        );
        assert_eq!(node.error_count(), 1);
    }

    #[test]
    fn duplicate_heartbeat_seq_is_idempotent() {
        let all = vec![p(0), p(1)];
        let mut a = AdaptiveBroadcast::new(p(0), all.clone(), vec![p(1)], params());
        let mut b = AdaptiveBroadcast::new(p(1), all, vec![p(0)], params());
        let view = b.build_full_view();
        let mut actions = Actions::new();
        let hb = Message::Heartbeat(HeartbeatMessage {
            seq: 1,
            ack: 0,
            view: HeartbeatView::Full(view),
        });
        a.handle_message(SimTime::new(1), p(1), hb.clone(), &mut actions);
        let after_first = a.estimated_loss(LinkId::new(p(0), p(1)).unwrap()).unwrap();
        a.handle_message(SimTime::new(1), p(1), hb, &mut actions);
        let after_second = a.estimated_loss(LinkId::new(p(0), p(1)).unwrap()).unwrap();
        assert_eq!(after_first, after_second);
    }

    #[test]
    fn recovery_excuses_missed_heartbeats() {
        let all = vec![p(0), p(1)];
        let mut a = shim(AdaptiveBroadcast::new(
            p(0),
            all.clone(),
            vec![p(1)],
            params(),
        ));
        let mut b = shim(AdaptiveBroadcast::new(p(1), all, vec![p(0)], params()));
        let l01 = LinkId::new(p(0), p(1)).unwrap();

        let mut actions = Actions::new();
        // Healthy warm-up.
        for t in 1..=30u64 {
            let now = SimTime::new(t);
            a.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                b.handle_message(now, p(0), m, &mut actions);
            }
            actions.clear();
            b.handle_tick(now, &mut actions);
            for (_, m) in actions.take_sends() {
                a.handle_message(now, p(1), m, &mut actions);
            }
            actions.clear();
        }
        let healthy = a.protocol().estimated_loss(l01).unwrap().value();

        // a is down for ticks 31–50: b keeps sending (messages vanish),
        // b's seq advances by 20.
        for t in 31..=50u64 {
            b.handle_tick(SimTime::new(t), &mut actions);
            actions.clear();
        }
        a.handle_recovery(SimTime::new(51), 20, &mut actions);
        actions.clear();
        // Next heartbeat from b arrives with a 20-gap; all excused.
        b.handle_tick(SimTime::new(51), &mut actions);
        let sends = actions.take_sends();
        let now = SimTime::new(51);
        for (_, m) in sends {
            a.handle_message(now, p(1), m, &mut actions);
        }
        let after = a.protocol().estimated_loss(l01).unwrap().value();
        assert!(
            after <= healthy + 0.02,
            "own downtime must not poison the link estimate ({healthy} → {after})"
        );
    }

    /// First contact is always a full view; once the receiver's ack
    /// comes back, emissions switch to deltas.
    #[test]
    fn delta_mode_full_view_fallback_then_deltas() {
        let all = vec![p(0), p(1)];
        let mut a = AdaptiveBroadcast::new(p(0), all.clone(), vec![p(1)], params());
        let mut b = AdaptiveBroadcast::new(p(1), all, vec![p(0)], params());
        let mut actions = Actions::new();

        let take_heartbeat = |actions: &mut Actions| -> Message {
            let sends = actions.take_sends();
            actions.clear();
            sends.into_iter().next().expect("one heartbeat").1
        };

        // a's first emission: full (nothing acked yet).
        a.on_event(
            SimTime::new(1),
            Event::Timer(AdaptiveBroadcast::HEARTBEAT),
            &mut actions,
        );
        let m1 = take_heartbeat(&mut actions);
        let Message::Heartbeat(hb1) = &m1 else {
            panic!("expected heartbeat")
        };
        assert!(matches!(hb1.view, HeartbeatView::Full(_)));
        b.handle_message(SimTime::new(1), p(0), m1, &mut actions);
        actions.clear();

        // b replies: its heartbeat acks a's generation.
        b.on_event(
            SimTime::new(1),
            Event::Timer(AdaptiveBroadcast::HEARTBEAT),
            &mut actions,
        );
        let m2 = take_heartbeat(&mut actions);
        let Message::Heartbeat(hb2) = &m2 else {
            panic!("expected heartbeat")
        };
        assert!(hb2.ack > 0, "b must ack a's merged generation");
        a.handle_message(SimTime::new(1), p(1), m2, &mut actions);
        actions.clear();

        // a learned a new link from b's view → topology changed → the
        // next emission is full again.
        a.on_event(
            SimTime::new(2),
            Event::Timer(AdaptiveBroadcast::HEARTBEAT),
            &mut actions,
        );
        let m3 = take_heartbeat(&mut actions);
        assert!(matches!(m3, Message::Heartbeat(_)));
        // 0—1 line: b's view carries no link a lacks, so no topology
        // change — but the first full (gen 1) was only acked now, so
        // this emission may already ride a delta.
        b.handle_message(SimTime::new(2), p(0), m3.clone(), &mut actions);
        actions.clear();
        b.on_event(
            SimTime::new(2),
            Event::Timer(AdaptiveBroadcast::HEARTBEAT),
            &mut actions,
        );
        let m4 = take_heartbeat(&mut actions);
        a.handle_message(SimTime::new(2), p(1), m4, &mut actions);
        actions.clear();

        // Steady state: with acks flowing both ways, emissions are
        // deltas from here on.
        a.on_event(
            SimTime::new(3),
            Event::Timer(AdaptiveBroadcast::HEARTBEAT),
            &mut actions,
        );
        let m5 = take_heartbeat(&mut actions);
        let Message::Heartbeat(hb5) = &m5 else {
            panic!("expected heartbeat")
        };
        assert!(
            matches!(hb5.view, HeartbeatView::Delta(_)),
            "steady state must ride deltas"
        );
    }

    /// A delta whose base the receiver never reached is dropped without
    /// corrupting state, and a subsequent full view recovers.
    #[test]
    fn inapplicable_delta_is_dropped_and_full_view_recovers() {
        let all = vec![p(0), p(1)];
        let mut a = AdaptiveBroadcast::new(p(0), all.clone(), vec![p(1)], params());
        let mut b = AdaptiveBroadcast::new(p(1), all, vec![p(0)], params());
        let mut actions = Actions::new();

        // A hand-crafted delta with an impossible base: b has no mirror
        // of a at all yet.
        let bogus = Message::Heartbeat(HeartbeatMessage {
            seq: 1,
            ack: 0,
            view: HeartbeatView::Delta(Arc::new(DeltaView {
                generation: 9,
                base: 7,
                topology_version: 1,
                processes: vec![(p(0), Arc::new(Estimate::first_hand(100)))],
                links: Vec::new(),
            })),
        });
        b.handle_message(SimTime::new(1), p(0), bogus, &mut actions);
        actions.clear();
        assert_eq!(b.error_count(), 1, "delta without a mirror is dropped");
        // The estimate merge was skipped: a's self-estimate is still
        // unknown to b.
        assert!(b.process_estimate(p(0)).unwrap().distortion().is_infinite());

        // A full view (what a conformant sender falls back to) heals it.
        let view = a.build_full_view();
        b.handle_message(
            SimTime::new(2),
            p(0),
            Message::Heartbeat(HeartbeatMessage {
                seq: 2,
                ack: 0,
                view: HeartbeatView::Full(view),
            }),
            &mut actions,
        );
        assert_eq!(
            b.process_estimate(p(0)).unwrap().distortion(),
            Distortion::finite(1)
        );
    }

    /// The scan-time schedule is insert-only: superseded times stay
    /// until they expire, times dedup, and arming reads the earliest
    /// scheduled time.
    #[test]
    fn deadline_schedule_is_insert_only_and_self_expiring() {
        let mut queue = DeadlineQueue::default();
        let now = SimTime::ZERO;
        queue.insert(now, SimTime::new(5));
        queue.insert(now, SimTime::new(5)); // dedup
        queue.insert(now, SimTime::new(10));
        assert_eq!(queue.earliest(), Some(SimTime::new(5)));
        // Expiring at 7 consumes the (possibly superseded) time 5 and
        // reports that a scan is warranted; 10 remains scheduled.
        assert!(queue.expire(SimTime::new(7)));
        assert!(!queue.expire(SimTime::new(7)));
        assert_eq!(queue.earliest(), Some(SimTime::new(10)));
        assert!(queue.expire(SimTime::new(10)));
        assert_eq!(queue.earliest(), None);
    }

    #[test]
    fn far_deadlines_bucket_and_near_deadlines_stay_exact() {
        let q = DeadlineQueue::default();
        // Inside the near window: exact.
        assert_eq!(
            q.sentinel(SimTime::ZERO, SimTime::new(100)),
            SimTime::new(100)
        );
        // Beyond it: rounded down to the bucket start, never past now.
        assert_eq!(
            q.sentinel(SimTime::ZERO, SimTime::new(1000)),
            SimTime::new(960)
        );
        // The same deadline assigned close to its time stays exact.
        assert_eq!(
            q.sentinel(SimTime::new(900), SimTime::new(1000)),
            SimTime::new(1000)
        );
        // Exact mode never buckets.
        let e = DeadlineQueue::exact();
        assert_eq!(
            e.sentinel(SimTime::ZERO, SimTime::new(1000)),
            SimTime::new(1000)
        );
    }

    /// Drives the full sentinel protocol (insert on assignment, expire +
    /// rearm on scan, re-assign on fire) over a synthetic peer set and
    /// records when each peer's deadline is processed.
    fn drive_deadline_protocol(mut q: DeadlineQueue, horizon: u64) -> Vec<(usize, u64)> {
        let timeouts: [u64; 5] = [7, 64, 150, 333, 1000];
        let mut deadline: Vec<u64> = timeouts.iter().map(|&t| 1 + t).collect();
        for &d in &deadline {
            q.insert(SimTime::ZERO, SimTime::new(d));
        }
        let mut fired = Vec::new();
        while let Some(at) = q.earliest() {
            if at.ticks() > horizon {
                break;
            }
            let now = at;
            q.expire(now);
            for (i, d) in deadline.iter_mut().enumerate() {
                if now.ticks() < *d {
                    q.rearm(now, SimTime::new(*d));
                    continue;
                }
                fired.push((i, now.ticks()));
                *d = now.ticks() + timeouts[i];
                q.insert(now, SimTime::new(*d));
            }
        }
        fired
    }

    /// The bucketed queue processes every deadline at exactly the tick
    /// the exact queue does — bucket sentinels only add no-op scans.
    #[test]
    fn bucketed_queue_fires_every_deadline_at_its_exact_time() {
        let exact = drive_deadline_protocol(DeadlineQueue::exact(), 5_000);
        let bucketed = drive_deadline_protocol(DeadlineQueue::default(), 5_000);
        assert!(!exact.is_empty());
        assert_eq!(exact, bucketed);
    }

    /// Full-protocol equivalence: a lossy, crashy adaptive scenario with
    /// timeouts far beyond the near window produces a bit-identical
    /// report whether the suspicion schedule buckets or not.
    #[test]
    fn bucketed_deadlines_leave_scenario_reports_bit_identical() {
        use crate::scenario::{FaultAction, FaultScript, Scenario, Workload};
        use crate::Payload;
        use diffuse_graph::generators;
        use diffuse_model::{Configuration, Probability};

        let run = |exact: bool| {
            let topology = generators::ring(5).unwrap();
            let config = Configuration::uniform(
                &topology,
                Probability::ZERO,
                Probability::new(0.2).unwrap(),
            );
            let scenario = Scenario::builder(topology.clone())
                .config(config)
                .seed(11)
                .workload(Workload::new().broadcast(
                    SimTime::new(500),
                    p(0),
                    Payload::from("probe"),
                ))
                .faults(FaultScript::new().at(
                    SimTime::new(200),
                    FaultAction::Crash {
                        process: p(3),
                        down_ticks: 180,
                    },
                ))
                .build();
            let all: Vec<ProcessId> = (0..5).map(p).collect();
            let params = AdaptiveParams {
                // δ = 150 pushes every deadline past NEAR (128), so the
                // bucketed run really exercises bucket sentinels.
                heartbeat_period: 150,
                self_tick_period: 150,
                ..AdaptiveParams::default()
            };
            scenario.run_sim(1_200, |id| {
                let neighbors = topology.neighbors(id).collect();
                let mut node = AdaptiveBroadcast::new(id, all.clone(), neighbors, params.clone());
                if exact {
                    node.use_exact_deadlines();
                }
                node
            })
        };

        let bucketed = run(false);
        let exact = run(true);
        assert_eq!(bucketed, exact);
        assert_eq!(format!("{bucketed:?}"), format!("{exact:?}"));
        // The scenario is non-trivial: something was delivered.
        assert!(bucketed.delivered.values().any(|&n| n > 0), "{bucketed:?}");
    }
}

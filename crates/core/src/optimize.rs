//! The `optimize()` function (Algorithm 2) and its budget-constrained dual
//! (Eq. 5).
//!
//! Two interchangeable solvers compute the same plans:
//!
//! * [`optimize_greedy`] / [`optimize_budget_greedy`] — the paper's
//!   increment-at-a-time greedy, kept as the executable specification;
//! * [`crate::optimize_waterfill`] / [`crate::optimize_budget_waterfill`]
//!   — an `O(L log L)` closed-form threshold ("waterfilling") solver that
//!   produces **bit-identical** plans (see `waterfill.rs`).
//!
//! [`optimize`] and [`optimize_budget`] are the public entry points and
//! delegate to the waterfilling solver; the greedy remains exported so
//! tests and benchmarks can cross-check the two against each other.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::reach::{link_success, reach};
use crate::{CoreError, MessageVector, ReliabilityTree};

/// Safety cap on greedy increments; reaching it means the target is
/// practically unreachable (e.g. λ extremely close to 1).
pub(crate) const MAX_INCREMENTS: u64 = 10_000_000;

/// Recompute the reach product from scratch this often to cancel
/// floating-point drift from incremental updates.
pub(crate) const RECOMPUTE_EVERY: u64 = 1024;

/// Tolerance when comparing the running reach against the target: exact
/// boundaries like `1 - 0.1³ = 0.999` are not representable in `f64`, and
/// without slack the greedy would buy a whole extra message to cross a
/// 1e-16 gap.
pub(crate) const REACH_EPS: f64 = 1e-12;

/// The solution of the optimization problem: per-link message counts plus
/// the reach they achieve.
#[derive(Debug, Clone, PartialEq)]
pub struct MessagePlan {
    vector: MessageVector,
    reach: f64,
}

impl MessagePlan {
    pub(crate) fn new(vector: MessageVector, reach: f64) -> Self {
        MessagePlan { vector, reach }
    }

    /// The per-link counts `m⃗`.
    pub fn vector(&self) -> &MessageVector {
        &self.vector
    }

    /// The probability `r(m⃗)` that every process receives the message.
    pub fn reach(&self) -> f64 {
        self.reach
    }

    /// Total messages `c(m⃗)` — the quantity the paper minimizes.
    pub fn total_messages(&self) -> u64 {
        self.vector.total()
    }

    /// Count for link index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn count(&self, j: usize) -> u32 {
        self.vector.get(j)
    }
}

/// Gain-ordered heap entry: `(gain, Reverse(index))` pops the highest gain
/// first and the smallest link index among equals, making the greedy
/// deterministic — a requirement, since every receiver of a wire tree must
/// reproduce the same plan (Algorithm 1, line 9).
///
/// `succ_next` caches `1 - λ^{m+1}` — the numerator of this candidate's
/// gain. When the candidate is consumed it becomes the *denominator* of
/// the link's next gain, so each greedy step costs a single power
/// evaluation instead of two. The cached value is the exact `f64` the
/// fresh computation would produce, so reuse never changes a plan.
#[derive(Debug)]
pub(crate) struct Candidate {
    gain: f64,
    index: usize,
    succ_next: f64,
}

impl Candidate {
    /// Candidate for the increment `m → m+1` of link `index`.
    pub(crate) fn fresh(lambda: f64, m: u32, index: usize) -> Self {
        let succ = link_success(lambda, m);
        let succ_next = link_success(lambda, m + 1);
        let gain = if succ <= 0.0 { 1.0 } else { succ_next / succ };
        Candidate {
            gain,
            index,
            succ_next,
        }
    }

    /// The gain this candidate offers.
    pub(crate) fn gain(&self) -> f64 {
        self.gain
    }

    /// The link index this candidate increments.
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// The follow-up candidate after this one was consumed (the link's
    /// count is now `m + 1`), reusing the cached numerator.
    pub(crate) fn successor(&self, lambda: f64, new_count: u32) -> Self {
        let succ_next = link_success(lambda, new_count + 1);
        let gain = if self.succ_next <= 0.0 {
            1.0
        } else {
            succ_next / self.succ_next
        };
        Candidate {
            gain,
            index: self.index,
            succ_next,
        }
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.gain.total_cmp(&other.gain).is_eq() && self.index == other.index
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| Reverse(self.index).cmp(&Reverse(other.index)))
    }
}

/// Multiplicative gain of sending one more message over link `j`
/// (Eq. 6): `α(m⃗, j) = (1 - λ_j^{m_j + 1}) / (1 - λ_j^{m_j})`.
///
/// Returns 1.0 (no gain) for λ = 0 and ∞-safe behavior for λ = 1 (gain 1:
/// another copy of a certainly-lost message helps nothing).
pub fn gain(lambda: f64, m: u32) -> f64 {
    let current = link_success(lambda, m);
    if current <= 0.0 {
        // λ = 1: hopeless link, sending more changes nothing.
        return 1.0;
    }
    link_success(lambda, m + 1) / current
}

/// Shared entry validation: target checks, the trivial all-ones solution,
/// and the dead-link error.
pub(crate) enum Preflight {
    /// The all-ones vector already meets the target.
    Done(MessagePlan),
    /// Keep optimizing from the all-ones vector.
    Continue(MessageVector),
}

pub(crate) fn preflight(tree: &ReliabilityTree, k: f64) -> Result<Preflight, CoreError> {
    if !k.is_finite() || !(0.0..1.0).contains(&k) {
        return Err(CoreError::InvalidTarget(k));
    }
    let m = MessageVector::ones(tree.link_count());
    let r = reach(tree, &m);
    if r + REACH_EPS >= k {
        return Ok(Preflight::Done(MessagePlan::new(m, r)));
    }
    if tree.lambdas().iter().any(|&l| l >= 1.0) {
        return Err(CoreError::TargetUnreachable { best_reach: r });
    }
    Ok(Preflight::Continue(m))
}

/// One candidate per link, each at the link's current count in `m`.
fn seed_heap(tree: &ReliabilityTree, m: &MessageVector) -> BinaryHeap<Candidate> {
    (0..m.len())
        .map(|j| Candidate::fresh(tree.lambda(j), m.get(j), j))
        .collect()
}

/// Runs the greedy from `m` (with `increments_so_far` increments already
/// spent) until the exact reach meets `k`.
///
/// The stopping rule is *drift-free*: the incrementally-updated running
/// reach only arms a trigger, and crossing the target is always confirmed
/// against the exact product — so the plan a run produces is a pure
/// function of the gain ordering and the exact-reach predicate, which is
/// what lets the closed-form waterfilling solver reproduce it
/// bit-for-bit. Each failed confirmation pulls the trigger halfway into
/// the remaining gap, so confirmations cost `O(L log(1/gap))` total.
pub(crate) fn greedy_until_target(
    tree: &ReliabilityTree,
    mut m: MessageVector,
    increments_so_far: u64,
    k: f64,
) -> Result<MessagePlan, CoreError> {
    let mut r = reach(tree, &m);
    if r + REACH_EPS >= k {
        return Ok(MessagePlan::new(m, r));
    }
    let mut heap = seed_heap(tree, &m);
    let mut increments = increments_so_far;
    let mut trigger = k - REACH_EPS;
    loop {
        let Some(best) = heap.pop() else {
            return Err(CoreError::TargetUnreachable {
                best_reach: reach(tree, &m),
            });
        };
        if best.gain <= 1.0 {
            // No link can improve the reach any further.
            return Err(CoreError::TargetUnreachable {
                best_reach: reach(tree, &m),
            });
        }
        m.increment(best.index);
        r *= best.gain;
        let lambda = tree.lambda(best.index);
        let next = best.successor(lambda, m.get(best.index));
        heap.push(next);
        increments += 1;
        if increments % RECOMPUTE_EVERY == 0 {
            r = reach(tree, &m);
        }
        if increments > MAX_INCREMENTS {
            return Err(CoreError::TargetUnreachable {
                best_reach: reach(tree, &m),
            });
        }
        if r >= trigger {
            let exact = reach(tree, &m);
            if exact + REACH_EPS >= k {
                return Ok(MessagePlan::new(m, exact));
            }
            r = exact;
            trigger = exact + (k - REACH_EPS - exact) * 0.5;
        }
    }
}

/// Algorithm 2: computes the cheapest `m⃗` with `reach(T, m⃗) ≥ k`.
///
/// Delegates to the `O(L log L)` waterfilling solver
/// ([`crate::optimize_waterfill`]), which produces plans bit-identical to
/// the reference greedy [`optimize_greedy`]. Appendix D proves the greedy
/// is exactly optimal (the gain function is isotone, giving the
/// greedy-choice and optimal-substructure properties); the test-suite
/// cross-checks both solvers against each other and against an exhaustive
/// oracle.
///
/// # Errors
///
/// * [`CoreError::InvalidTarget`] if `k` is not in `[0, 1)`;
/// * [`CoreError::TargetUnreachable`] if some link has λ = 1 and `k > 0`,
///   or the increment budget is exhausted.
///
/// # Example
///
/// ```
/// use diffuse_core::{optimize, ReliabilityTree, WireTree};
/// use diffuse_model::ProcessId;
///
/// # fn main() -> Result<(), diffuse_core::CoreError> {
/// // One link losing 10% of traffic: three copies give 0.999.
/// let wire = WireTree::from_parts(
///     ProcessId::new(0),
///     vec![ProcessId::new(0), ProcessId::new(1)],
///     vec![0],
///     vec![0.1],
/// )?;
/// let tree = ReliabilityTree::from_wire(&wire)?;
/// let plan = optimize(&tree, 0.999)?;
/// assert_eq!(plan.total_messages(), 3);
/// assert!(plan.reach() >= 0.999);
/// # Ok(())
/// # }
/// ```
pub fn optimize(tree: &ReliabilityTree, k: f64) -> Result<MessagePlan, CoreError> {
    crate::waterfill::optimize_waterfill(tree, k)
}

/// The reference greedy for Algorithm 2: starts from `(1, 1, …, 1)` and
/// repeatedly increments the link with the maximum gain until the target
/// is met.
///
/// Kept as the executable specification of [`optimize`]; the waterfilling
/// solver must (and does — property-tested) produce bit-identical plans.
///
/// # Errors
///
/// Same contract as [`optimize`].
pub fn optimize_greedy(tree: &ReliabilityTree, k: f64) -> Result<MessagePlan, CoreError> {
    match preflight(tree, k)? {
        Preflight::Done(plan) => Ok(plan),
        Preflight::Continue(m) => greedy_until_target(tree, m, 0, k),
    }
}

/// The budget-constrained dual (Eq. 5): maximizes `reach(T, m⃗)` subject
/// to `c(m⃗) ≤ budget`.
///
/// Delegates to the waterfilling solver
/// ([`crate::optimize_budget_waterfill`]); plans are bit-identical to the
/// reference greedy [`optimize_budget_greedy`] (footnote 3 of the paper).
///
/// # Errors
///
/// Returns [`CoreError::BudgetTooSmall`] if `budget` is below the number
/// of tree links (every link needs at least one message).
pub fn optimize_budget(tree: &ReliabilityTree, budget: u64) -> Result<MessagePlan, CoreError> {
    crate::waterfill::optimize_budget_waterfill(tree, budget)
}

/// The reference greedy for the budget dual: runs the same greedy with
/// the stop condition `c(m⃗) = budget`.
///
/// # Errors
///
/// Same contract as [`optimize_budget`].
pub fn optimize_budget_greedy(
    tree: &ReliabilityTree,
    budget: u64,
) -> Result<MessagePlan, CoreError> {
    let links = tree.link_count();
    if budget < links as u64 {
        return Err(CoreError::BudgetTooSmall { budget, links });
    }
    let mut m = MessageVector::ones(links);
    let mut heap = seed_heap(tree, &m);
    for _ in 0..budget - links as u64 {
        let Some(best) = heap.pop() else { break };
        if best.gain <= 1.0 {
            break; // nothing can improve further; stay under budget
        }
        m.increment(best.index);
        let lambda = tree.lambda(best.index);
        let next = best.successor(lambda, m.get(best.index));
        heap.push(next);
    }
    let r = reach(tree, &m);
    Ok(MessagePlan::new(m, r))
}

/// Exhaustive oracle for tests: tries every `m⃗` with entries in
/// `1..=max_per_link` and returns a cheapest vector reaching `k`, if any.
///
/// Exponential; intended only for small trees in tests and for the
/// greedy-vs-exhaustive ablation benchmark.
pub fn optimize_exhaustive(
    tree: &ReliabilityTree,
    k: f64,
    max_per_link: u32,
) -> Option<MessagePlan> {
    let links = tree.link_count();
    if links == 0 {
        return Some(MessagePlan::new(MessageVector::ones(0), 1.0));
    }
    let mut best: Option<MessagePlan> = None;
    let mut counts = vec![1u32; links];
    loop {
        let m = MessageVector::from_counts(counts.clone());
        let r = reach(tree, &m);
        if r + REACH_EPS >= k {
            let total = m.total();
            if best.as_ref().is_none_or(|b| total < b.total_messages()) {
                best = Some(MessagePlan::new(m, r));
            }
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == links {
                return best;
            }
            if counts[pos] < max_per_link {
                counts[pos] += 1;
                break;
            }
            counts[pos] = 1;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{chain_tree, star_tree, tree_with_lambdas};

    #[test]
    fn gain_is_isotone_nonincreasing() {
        // Lemma 4 (Eq. 7): α(m⃗ + u⃗_k, k) ≤ α(m⃗, k).
        for lambda in [0.05, 0.3, 0.7, 0.95] {
            let mut last = gain(lambda, 1);
            for m in 2..40 {
                let g = gain(lambda, m);
                assert!(g <= last + 1e-12, "gain must not increase (λ={lambda})");
                assert!(g >= 1.0);
                last = g;
            }
        }
    }

    #[test]
    fn gain_edge_cases() {
        assert_eq!(gain(0.0, 1), 1.0);
        assert_eq!(gain(1.0, 3), 1.0);
    }

    #[test]
    fn candidate_numerator_reuse_is_exact() {
        // The cached-numerator fast path must reproduce gain() bit for
        // bit, or the two solvers could order increments differently.
        for lambda in [0.05, 0.3, 0.7, 0.95, 0.99] {
            let mut candidate = Candidate::fresh(lambda, 1, 0);
            for m in 1..200u32 {
                assert_eq!(candidate.gain, gain(lambda, m), "λ={lambda}, m={m}");
                candidate = candidate.successor(lambda, m + 1);
            }
        }
    }

    #[test]
    fn single_link_plan_matches_closed_form() {
        // Need 1 - 0.1^m >= 0.999 → m = 3.
        let tree = chain_tree(&[0.1]);
        let plan = optimize(&tree, 0.999).unwrap();
        assert_eq!(plan.vector().counts(), &[3]);
        assert_eq!(plan.count(0), 3);
        assert!((plan.reach() - (1.0 - 0.001)).abs() < 1e-12);
    }

    #[test]
    fn perfect_links_need_one_message_each() {
        let tree = star_tree(&[0.0, 0.0, 0.0]);
        let plan = optimize(&tree, 0.9999).unwrap();
        assert_eq!(plan.total_messages(), 3);
        assert_eq!(plan.reach(), 1.0);
    }

    #[test]
    fn greedy_prefers_the_weak_link() {
        // One lossy link among reliable ones gets the extra copies.
        let tree = star_tree(&[0.01, 0.5, 0.01]);
        let plan = optimize(&tree, 0.99).unwrap();
        assert!(plan.count(1) > plan.count(0));
        assert!(plan.count(1) > plan.count(2));
        assert!(plan.reach() >= 0.99);
    }

    #[test]
    fn rejects_invalid_targets() {
        let tree = chain_tree(&[0.1]);
        for k in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(optimize(&tree, k), Err(CoreError::InvalidTarget(_))),
                "target {k} must be rejected"
            );
            assert!(
                matches!(optimize_greedy(&tree, k), Err(CoreError::InvalidTarget(_))),
                "target {k} must be rejected by the greedy"
            );
        }
    }

    #[test]
    fn dead_link_makes_target_unreachable() {
        let tree = chain_tree(&[0.1, 1.0]);
        assert!(matches!(
            optimize(&tree, 0.9),
            Err(CoreError::TargetUnreachable { .. })
        ));
        assert!(matches!(
            optimize_greedy(&tree, 0.9),
            Err(CoreError::TargetUnreachable { .. })
        ));
        // k = 0 is trivially satisfiable even with a dead link.
        let plan = optimize(&tree, 0.0).unwrap();
        assert_eq!(plan.total_messages(), 2);
    }

    #[test]
    fn empty_tree_is_trivially_reached() {
        let tree = crate::tests_support::singleton_tree();
        let plan = optimize(&tree, 0.99).unwrap();
        assert_eq!(plan.total_messages(), 0);
        assert_eq!(plan.reach(), 1.0);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_trees() {
        // Theorem 2: the greedy solution is optimal. Exhaustive search
        // over all vectors with entries ≤ 6 must not find anything
        // cheaper.
        for (tree, k) in [
            (chain_tree(&[0.3, 0.2]), 0.9),
            (chain_tree(&[0.5, 0.5, 0.5]), 0.85),
            (star_tree(&[0.1, 0.4, 0.25]), 0.95),
            (tree_with_lambdas(), 0.9),
        ] {
            let greedy = optimize_greedy(&tree, k).unwrap();
            let oracle = optimize_exhaustive(&tree, k, 6).unwrap();
            assert_eq!(
                greedy.total_messages(),
                oracle.total_messages(),
                "greedy must be optimal (k={k})"
            );
            assert!(greedy.reach() >= k);
            // And the default (waterfilling) path must agree bit for bit.
            assert_eq!(optimize(&tree, k).unwrap(), greedy);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let tree = tree_with_lambdas();
        let a = optimize(&tree, 0.9999).unwrap();
        let b = optimize(&tree, 0.9999).unwrap();
        assert_eq!(a, b);
        let c = optimize_greedy(&tree, 0.9999).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn budget_dual_improves_with_budget() {
        let tree = star_tree(&[0.3, 0.3, 0.3]);
        let mut last = 0.0;
        for budget in 3..12 {
            let plan = optimize_budget(&tree, budget).unwrap();
            assert_eq!(plan.total_messages(), budget);
            assert!(plan.reach() >= last);
            last = plan.reach();
        }
    }

    #[test]
    fn budget_dual_rejects_starvation() {
        let tree = star_tree(&[0.3, 0.3, 0.3]);
        assert!(matches!(
            optimize_budget(&tree, 2),
            Err(CoreError::BudgetTooSmall {
                budget: 2,
                links: 3
            })
        ));
        assert!(matches!(
            optimize_budget_greedy(&tree, 2),
            Err(CoreError::BudgetTooSmall {
                budget: 2,
                links: 3
            })
        ));
    }

    #[test]
    fn budget_dual_stops_early_on_perfect_links() {
        let tree = star_tree(&[0.0, 0.0]);
        let plan = optimize_budget(&tree, 100).unwrap();
        // No point sending more than one message over perfect links.
        assert_eq!(plan.total_messages(), 2);
        assert_eq!(plan.reach(), 1.0);
        assert_eq!(optimize_budget_greedy(&tree, 100).unwrap(), plan);
    }

    #[test]
    fn duality_of_the_two_problems() {
        // Lemma 3: solving the dual with the primal's cost yields the
        // primal's reach (and vice versa).
        let tree = tree_with_lambdas();
        let primal = optimize(&tree, 0.99).unwrap();
        let dual = optimize_budget(&tree, primal.total_messages()).unwrap();
        assert!(dual.reach() >= 0.99);
        assert_eq!(dual.total_messages(), primal.total_messages());
    }
}

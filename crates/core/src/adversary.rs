//! The adversary engine: lying nodes and their containment accounting.
//!
//! The paper's adaptive diffusion is built for *unreliable* environments;
//! its distortion machinery ([`Estimate::adopt_if_better`]'s strict
//! ranking, the delta codec's full-view fallback) is what is supposed to
//! contain nodes that do worse than crash — nodes that **lie**. This
//! module makes such nodes constructible so the containment claims become
//! testable:
//!
//! * [`CorruptionMode`] names the lie families: understated distortion
//!   stamps, stale views re-stamped as fresh, and forged piggybacked
//!   acks.
//! * [`Adversary`] wraps any [`Protocol`] and, while a scripted
//!   corruption window is active, rewrites the wrapped protocol's
//!   outgoing heartbeats in place. An *inactive* adversary is
//!   bit-for-bit the inner protocol, so every node of a scenario can be
//!   wrapped and the fault script alone decides who lies — on the sim
//!   kernel, the sharded kernel, and the virtual fabric alike.
//! * [`ProtocolAudit`] / [`SenderAudit`] are the receiver-side counters
//!   (entries offered vs. adopted per sender, future acks rejected) that
//!   [`Containment`] aggregates into scenario-level containment metrics.
//!
//! Corrupted estimates are fabricated through [`Estimate::forged`] — the
//! single constructor that can mint arbitrary distortion stamps — and the
//! workspace lint confines its callers to this module, the chaos layer,
//! and tests. The containment theorem this machinery checks is
//! structural: honest stores only ever ingest remote content through
//! `adopt_if_better`/`adopt`, which store it at `theirs.distortion + 1 ≥
//! 1`, so no lie can ever occupy an honest store at distortion 0 — and
//! first-hand (distortion-0) honest knowledge can therefore never lose to
//! a forgery under the strict `<` ranking.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};
use std::str::FromStr;
use std::sync::Arc;

use diffuse_bayes::{Distortion, Estimate};
use diffuse_model::ProcessId;
use diffuse_sim::SimTime;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::knowledge::{DeltaView, View};
use crate::protocol::{
    Actions, BroadcastId, Event, HeartbeatMessage, HeartbeatView, Message, Payload, Protocol,
};
use crate::CoreError;

/// Golden-ratio odd multiplier (same family as the sharded executor's
/// seed spreading).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain-separation salt for lying-node streams: adversary draws must
/// ride their own seeded streams so adversary-free scenarios keep their
/// frozen kernel/fabric RNG streams bit-identical.
const LIAR_SALT: u64 = 0xAD5E_ECA7_5EED_0001;

/// SplitMix64 finalizer (Steele, Lea & Flood) — bijective mixer for seed
/// derivation only; the streams themselves are the workspace's frozen
/// `StdRng`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for process `id`'s lying-node stream under run seed
/// `run_seed`.
///
/// Pure function of `(run_seed, id)` and domain-separated from both the
/// kernel's delivery stream and the message adversary's suppression
/// stream, so the same scripted liar draws the same corruption schedule
/// on every substrate.
#[must_use]
pub fn adversary_seed(run_seed: u64, id: ProcessId) -> u64 {
    splitmix64(run_seed ^ LIAR_SALT ^ u64::from(id.index()).wrapping_mul(GOLDEN))
}

/// A lying-node corruption family (scripted via
/// `FaultAction::Corrupt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CorruptionMode {
    /// Re-stamp every outgoing link estimate at distortion 0 with a
    /// worsened posterior: the strongest possible claim ("first-hand
    /// knowledge, the link is bad") about links the liar has no business
    /// speaking for. Exercises `adopt_if_better`'s distortion bound.
    UnderstateDistortion,
    /// Cache the first view emitted inside the window and replay it on
    /// every later heartbeat with fresh sequence numbers — stale but
    /// fresh-stamped knowledge. Exercises idempotent re-application and
    /// the cumulative-delta base rules.
    StaleReplay,
    /// Inflate the piggybacked `ack` field — claim to have merged view
    /// generations the peer never emitted (or not yet). Exercises the
    /// receiver's future-ack rejection and the delta codec's
    /// full-view/first-contact fallback.
    ForgeAck,
}

impl CorruptionMode {
    /// Every mode, in a fixed order (test matrices iterate this).
    pub const ALL: [CorruptionMode; 3] = [
        CorruptionMode::UnderstateDistortion,
        CorruptionMode::StaleReplay,
        CorruptionMode::ForgeAck,
    ];
}

impl fmt::Display for CorruptionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptionMode::UnderstateDistortion => "understate",
            CorruptionMode::StaleReplay => "stale",
            CorruptionMode::ForgeAck => "forge-ack",
        };
        f.write_str(s)
    }
}

impl FromStr for CorruptionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "understate" => Ok(CorruptionMode::UnderstateDistortion),
            "stale" => Ok(CorruptionMode::StaleReplay),
            "forge-ack" => Ok(CorruptionMode::ForgeAck),
            other => Err(format!(
                "unknown corruption mode `{other}` (expected understate|stale|forge-ack)"
            )),
        }
    }
}

/// Receiver-side counters about one heartbeat sender.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderAudit {
    /// Estimate entries (process + link) this sender's heartbeats
    /// offered us.
    pub offered: u64,
    /// Offered entries our store actually adopted (via
    /// `adopt_if_better`/`adopt`, including delta re-evaluations).
    pub adopted: u64,
    /// Adoptions that landed in our store at [`Distortion::ZERO`] —
    /// structurally impossible (adoption increments), so any nonzero
    /// count is a broken containment bound.
    pub bound_violations: u64,
}

impl SenderAudit {
    fn merge(&mut self, other: &SenderAudit) {
        self.offered += other.offered;
        self.adopted += other.adopted;
        self.bound_violations += other.bound_violations;
    }
}

/// One protocol instance's adversary-facing audit counters.
///
/// Every [`Protocol`] exposes these via [`Protocol::audit`]; the default
/// is all-zero, so protocols without audit bookkeeping (gossip, optimal)
/// participate in scenario reports for free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolAudit {
    /// Per-sender offer/adoption counters, keyed by the heartbeat
    /// sender.
    pub per_sender: BTreeMap<ProcessId, SenderAudit>,
    /// Heartbeats whose piggybacked ack named a view generation we have
    /// not emitted yet (rejected, ack state untouched).
    pub future_acks_rejected: u64,
    /// Heartbeats this node emitted while its corruption window was
    /// active (nonzero only on lying nodes).
    pub corrupt_emissions: u64,
}

impl ProtocolAudit {
    /// The audit row for one sender, creating it at zero on first use.
    pub fn sender(&mut self, from: ProcessId) -> &mut SenderAudit {
        self.per_sender.entry(from).or_default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &ProtocolAudit) {
        for (&from, audit) in &other.per_sender {
            self.per_sender.entry(from).or_default().merge(audit);
        }
        self.future_acks_rejected += other.future_acks_rejected;
        self.corrupt_emissions += other.corrupt_emissions;
    }
}

/// Scenario-level containment metrics: what the adversaries did, and how
/// far it got into honest stores.
///
/// Adversary-free scenarios report the all-zero value (the corrupt set
/// is empty and no suppression ran), so report-equality suites that
/// predate the adversary engine are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Containment {
    /// Heartbeats emitted by lying nodes inside their corruption
    /// windows.
    pub corrupt_emissions: u64,
    /// Estimate entries lying nodes offered to *correct* nodes.
    pub corrupt_offers: u64,
    /// Offered entries correct nodes adopted (at incremented
    /// distortion — the bounded, self-healing kind of damage).
    pub corrupt_adoptions: u64,
    /// Adoptions by correct nodes that landed at distortion 0. The
    /// containment theorem says this is always zero.
    pub bound_violations: u64,
    /// Emissions suppressed by the message adversary.
    pub suppressed_emissions: u64,
    /// Future-stamped acks correct nodes rejected.
    pub future_acks_rejected: u64,
}

impl Containment {
    /// Aggregates per-node audits into scenario containment metrics.
    ///
    /// `corrupt` is the set of scripted liars; offers/adoptions are
    /// counted only where a **correct** node's audit names a corrupt
    /// sender, and `corrupt_emissions` only from the liars' own
    /// counters, so honest gossip between honest nodes never shows up
    /// here.
    pub fn assemble(
        corrupt: &BTreeSet<ProcessId>,
        audits: &BTreeMap<ProcessId, ProtocolAudit>,
        suppressed_emissions: u64,
    ) -> Self {
        let mut c = Containment {
            suppressed_emissions,
            ..Containment::default()
        };
        for (node, audit) in audits {
            if corrupt.contains(node) {
                c.corrupt_emissions += audit.corrupt_emissions;
                continue;
            }
            c.future_acks_rejected += audit.future_acks_rejected;
            for (sender, sa) in &audit.per_sender {
                if corrupt.contains(sender) {
                    c.corrupt_offers += sa.offered;
                    c.corrupt_adoptions += sa.adopted;
                    c.bound_violations += sa.bound_violations;
                }
            }
        }
        c
    }

    /// `true` when nothing adversarial happened (the adversary-free
    /// report value).
    pub fn is_clean(&self) -> bool {
        *self == Containment::default()
    }
}

/// An active corruption window.
#[derive(Debug, Clone)]
struct ActiveWindow {
    mode: CorruptionMode,
    /// First tick at which the node is honest again.
    until: SimTime,
}

/// Wraps a [`Protocol`] with a scripted lying-node layer.
///
/// Outside a corruption window the wrapper is transparent: it delegates
/// every call and rewrites nothing, so a `Simulation<ProtocolActor<
/// Adversary<P>>>` with no `Corrupt` fault scripted is bit-identical to
/// one over plain `P`. [`Event::Corrupt`] (injected by the scenario
/// engine's fault scripts) opens a window during which every outgoing
/// [`Message::Heartbeat`] is rewritten per the scripted
/// [`CorruptionMode`], drawing from the node's private
/// [`adversary_seed`] stream.
#[derive(Debug)]
pub struct Adversary<P> {
    inner: P,
    rng: StdRng,
    active: Option<ActiveWindow>,
    /// [`CorruptionMode::StaleReplay`]'s cached first-in-window view.
    stale: Option<HeartbeatView>,
    corrupt_emissions: u64,
}

impl<P: Protocol> Adversary<P> {
    /// Wraps `inner`, seeding the corruption stream from the run seed
    /// and the node's identity.
    pub fn new(inner: P, run_seed: u64) -> Self {
        let seed = adversary_seed(run_seed, inner.id());
        Adversary {
            inner,
            rng: StdRng::seed_from_u64(seed),
            active: None,
            stale: None,
            corrupt_emissions: 0,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Heartbeats emitted inside corruption windows so far.
    pub fn corrupt_emissions(&self) -> u64 {
        self.corrupt_emissions
    }

    /// Whether a corruption window is open at `now`.
    pub fn is_lying(&self, now: SimTime) -> bool {
        self.active.as_ref().is_some_and(|w| now < w.until)
    }

    /// Rewrites the queued heartbeat sends in place if a window is
    /// active, preserving send order.
    fn rewrite(&mut self, now: SimTime, actions: &mut Actions) {
        let mode = match &self.active {
            Some(w) if now < w.until => w.mode,
            Some(_) => {
                // Window expired: drop the state so the node is honest
                // (and allocation-free) again.
                self.active = None;
                self.stale = None;
                return;
            }
            None => return,
        };
        let sends = actions.take_sends();
        if sends.is_empty() {
            return;
        }
        for (to, message) in sends {
            let message = match message {
                Message::Heartbeat(hb) => {
                    self.corrupt_emissions += 1;
                    Message::Heartbeat(corrupt_heartbeat(mode, hb, &mut self.rng, &mut self.stale))
                }
                other => other,
            };
            actions.send(to, message);
        }
    }
}

impl<P: Protocol> Protocol for Adversary<P> {
    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_start(&mut self, now: SimTime, actions: &mut Actions) {
        self.inner.on_start(now, actions);
        self.rewrite(now, actions);
    }

    fn on_event(&mut self, now: SimTime, event: Event, actions: &mut Actions) {
        if let Event::Corrupt { mode, window } = event {
            self.active = Some(ActiveWindow {
                mode,
                until: now + window,
            });
            self.stale = None;
            return;
        }
        self.inner.on_event(now, event, actions);
        self.rewrite(now, actions);
    }

    fn broadcast(
        &mut self,
        now: SimTime,
        payload: Payload,
        actions: &mut Actions,
    ) -> Result<BroadcastId, CoreError> {
        let id = self.inner.broadcast(now, payload, actions)?;
        self.rewrite(now, actions);
        Ok(id)
    }

    fn delivered(&self) -> &[(BroadcastId, Payload)] {
        self.inner.delivered()
    }

    fn audit(&self) -> ProtocolAudit {
        let mut audit = self.inner.audit();
        audit.corrupt_emissions += self.corrupt_emissions;
        audit
    }
}

/// Rewrites one heartbeat per the scripted corruption mode — the single
/// corruption kernel shared by the in-process [`Adversary`] wrapper and
/// the UDP cluster's chaos-level frame rewriting.
///
/// Draw discipline (part of the cross-substrate determinism contract):
/// [`CorruptionMode::UnderstateDistortion`] and
/// [`CorruptionMode::ForgeAck`] consume exactly one `u64` draw per
/// heartbeat; [`CorruptionMode::StaleReplay`] consumes none.
pub fn corrupt_heartbeat(
    mode: CorruptionMode,
    mut hb: HeartbeatMessage,
    rng: &mut StdRng,
    stale: &mut Option<HeartbeatView>,
) -> HeartbeatMessage {
    match mode {
        CorruptionMode::UnderstateDistortion => {
            // One worsening factor per heartbeat: every link estimate is
            // re-stamped first-hand ("I observed this") with a posterior
            // pushed toward unreliable.
            let k = 1 + (rng.next_u64() % 32) as u32;
            hb.view = match hb.view {
                HeartbeatView::Full(view) => {
                    let mut poisoned = View::clone(&view);
                    poisoned.links = poison_links(&poisoned.links, k);
                    HeartbeatView::Full(Arc::new(poisoned))
                }
                HeartbeatView::Delta(delta) => {
                    let mut poisoned = DeltaView::clone(&delta);
                    poisoned.links = poison_links(&poisoned.links, k);
                    HeartbeatView::Delta(Arc::new(poisoned))
                }
            };
        }
        CorruptionMode::StaleReplay => match stale {
            Some(cached) => hb.view = cached.clone(),
            None => *stale = Some(hb.view.clone()),
        },
        CorruptionMode::ForgeAck => {
            // Claim to have merged a generation ahead of anything the
            // peer plausibly emitted. Small offsets land inside the
            // peer's emitted range (poisoning its ack bookkeeping until
            // an honest ack repairs it); larger ones trip the
            // future-ack rejection. Both containment paths get
            // exercised across a window.
            hb.ack = hb.ack.saturating_add(1 + rng.next_u64() % 64);
        }
    }
    hb
}

/// Re-stamps every link estimate as a distortion-0 forgery with the
/// posterior worsened by `k` silence periods.
fn poison_links(
    links: &[(diffuse_model::LinkId, Arc<Estimate>)],
    k: u32,
) -> Vec<(diffuse_model::LinkId, Arc<Estimate>)> {
    links
        .iter()
        .map(|(id, est)| {
            let mut beliefs = est.beliefs().clone();
            beliefs.decrease_reliability(k);
            // lint:allow(adversary-forge): this *is* the adversary module.
            (*id, Arc::new(Estimate::forged(beliefs, Distortion::ZERO)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_bayes::BeliefEstimator;
    use diffuse_model::LinkId;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample_heartbeat(view: HeartbeatView) -> HeartbeatMessage {
        HeartbeatMessage {
            seq: 9,
            ack: 4,
            view,
        }
    }

    fn full_view() -> HeartbeatView {
        let mut topo = diffuse_model::Topology::new();
        topo.add_link(p(0), p(1)).unwrap();
        HeartbeatView::Full(Arc::new(View {
            generation: 3,
            topology_version: 1,
            topology: Arc::new(topo),
            processes: vec![(p(0), Arc::new(Estimate::first_hand(10)))],
            links: vec![(
                LinkId::new(p(0), p(1)).unwrap(),
                Arc::new(Estimate::from_parts(
                    BeliefEstimator::new(10),
                    Distortion::finite(2),
                )),
            )],
        }))
    }

    #[test]
    fn corruption_mode_round_trips_through_strings() {
        for mode in CorruptionMode::ALL {
            assert_eq!(mode.to_string().parse::<CorruptionMode>(), Ok(mode));
        }
        assert!("nonsense".parse::<CorruptionMode>().is_err());
    }

    #[test]
    fn adversary_seed_is_domain_separated() {
        // Distinct per process, distinct per run seed, never the raw
        // run seed (which is the kernel delivery stream).
        assert_ne!(adversary_seed(7, p(0)), adversary_seed(7, p(1)));
        assert_ne!(adversary_seed(7, p(0)), adversary_seed(8, p(0)));
        assert_ne!(adversary_seed(7, p(0)), 7);
    }

    #[test]
    fn understate_forges_zero_distortion_links() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stale = None;
        let hb = corrupt_heartbeat(
            CorruptionMode::UnderstateDistortion,
            sample_heartbeat(full_view()),
            &mut rng,
            &mut stale,
        );
        let HeartbeatView::Full(view) = hb.view else {
            panic!("mode must not change the view flavor");
        };
        for (_, est) in &view.links {
            assert_eq!(est.distortion(), Distortion::ZERO);
            assert!(est.tainted());
        }
        // Process entries are left alone.
        assert!(!view.processes[0].1.tainted());
        assert!(stale.is_none());
    }

    #[test]
    fn stale_replay_caches_then_replays() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut reference = StdRng::seed_from_u64(1);
        let mut stale = None;
        let first = corrupt_heartbeat(
            CorruptionMode::StaleReplay,
            sample_heartbeat(full_view()),
            &mut rng,
            &mut stale,
        );
        assert!(stale.is_some());

        let mut fresher = sample_heartbeat(full_view());
        fresher.seq = 10;
        let replayed =
            corrupt_heartbeat(CorruptionMode::StaleReplay, fresher, &mut rng, &mut stale);
        // Fresh stamp, stale body.
        assert_eq!(replayed.seq, 10);
        assert_eq!(replayed.view, first.view);
        // StaleReplay consumes no draws.
        assert_eq!(rng.next_u64(), reference.next_u64());
    }

    #[test]
    fn forge_ack_inflates_the_ack() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stale = None;
        let hb = corrupt_heartbeat(
            CorruptionMode::ForgeAck,
            sample_heartbeat(full_view()),
            &mut rng,
            &mut stale,
        );
        assert!(hb.ack > 4 && hb.ack <= 4 + 64);
    }

    #[test]
    fn containment_assembly_splits_corrupt_and_correct() {
        let corrupt: BTreeSet<ProcessId> = [p(1)].into_iter().collect();
        let mut audits: BTreeMap<ProcessId, ProtocolAudit> = BTreeMap::new();

        // Correct node 0 heard from liar 1 and honest 2.
        let mut a0 = ProtocolAudit::default();
        *a0.sender(p(1)) = SenderAudit {
            offered: 10,
            adopted: 3,
            bound_violations: 0,
        };
        *a0.sender(p(2)) = SenderAudit {
            offered: 50,
            adopted: 40,
            bound_violations: 0,
        };
        a0.future_acks_rejected = 2;
        audits.insert(p(0), a0);

        // The liar's own audit only contributes its emission count.
        let mut a1 = ProtocolAudit::default();
        *a1.sender(p(0)) = SenderAudit {
            offered: 99,
            adopted: 99,
            bound_violations: 99,
        };
        a1.corrupt_emissions = 7;
        a1.future_acks_rejected = 99;
        audits.insert(p(1), a1);

        let c = Containment::assemble(&corrupt, &audits, 5);
        assert_eq!(
            c,
            Containment {
                corrupt_emissions: 7,
                corrupt_offers: 10,
                corrupt_adoptions: 3,
                bound_violations: 0,
                suppressed_emissions: 5,
                future_acks_rejected: 2,
            }
        );
        assert!(!c.is_clean());
        assert!(Containment::default().is_clean());

        // Adversary-free: empty corrupt set, no suppression.
        let free = Containment::assemble(&BTreeSet::new(), &audits, 0);
        assert_eq!(free.corrupt_offers, 0);
        assert_eq!(free.corrupt_emissions, 0);
    }

    #[test]
    fn audit_merge_sums_fields() {
        let mut a = ProtocolAudit::default();
        *a.sender(p(1)) = SenderAudit {
            offered: 1,
            adopted: 1,
            bound_violations: 0,
        };
        a.future_acks_rejected = 1;
        let mut b = ProtocolAudit::default();
        *b.sender(p(1)) = SenderAudit {
            offered: 2,
            adopted: 0,
            bound_violations: 1,
        };
        b.corrupt_emissions = 3;
        a.merge(&b);
        assert_eq!(a.sender(p(1)).offered, 3);
        assert_eq!(a.sender(p(1)).adopted, 1);
        assert_eq!(a.sender(p(1)).bound_violations, 1);
        assert_eq!(a.future_acks_rejected, 1);
        assert_eq!(a.corrupt_emissions, 3);
    }
}

//! Error type for the core protocols.

use core::fmt;

use diffuse_graph::GraphError;
use diffuse_model::{ModelError, ProcessId};

/// Errors produced by the broadcast protocols and their optimization
/// machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The target reliability `K` is not a probability in `[0, 1)`.
    ///
    /// `K = 1` is rejected because a lossy link can never guarantee
    /// certain delivery with finitely many messages.
    InvalidTarget(f64),
    /// The target reliability cannot be reached: some tree link has
    /// `λ = 1` (zero reliability), or the optimizer hit its iteration
    /// budget.
    TargetUnreachable {
        /// Best reach achieved before giving up.
        best_reach: f64,
    },
    /// A message budget below the number of tree links was supplied to the
    /// budget-constrained optimizer (every link needs at least one
    /// message).
    BudgetTooSmall {
        /// Supplied budget.
        budget: u64,
        /// Number of tree links.
        links: usize,
    },
    /// The local topology knowledge does not yet connect every known
    /// process, so no spanning tree exists (adaptive protocols hit this
    /// before their first heartbeats propagate).
    KnowledgeIncomplete,
    /// A wire-encoded tree was malformed (wrong lengths, unknown parent
    /// indices, or out-of-range probabilities).
    MalformedWireTree(&'static str),
    /// The process is not part of the tree it was asked to forward.
    NotInTree(ProcessId),
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// An underlying model operation failed.
    Model(ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidTarget(k) => {
                write!(f, "target reliability {k} must lie in [0, 1)")
            }
            CoreError::TargetUnreachable { best_reach } => write!(
                f,
                "target reliability unreachable; best achievable reach was {best_reach}"
            ),
            CoreError::BudgetTooSmall { budget, links } => write!(
                f,
                "message budget {budget} is below the {links} tree links (one message each)"
            ),
            CoreError::KnowledgeIncomplete => {
                write!(
                    f,
                    "local topology knowledge does not yet span all known processes"
                )
            }
            CoreError::MalformedWireTree(reason) => {
                write!(f, "malformed wire tree: {reason}")
            }
            CoreError::NotInTree(p) => write!(f, "process {p} is not part of the tree"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::InvalidTarget(1.5).to_string().contains("1.5"));
        assert!(CoreError::BudgetTooSmall {
            budget: 3,
            links: 9
        }
        .to_string()
        .contains("9 tree links"));
        assert!(CoreError::TargetUnreachable { best_reach: 0.5 }
            .to_string()
            .contains("0.5"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let err: CoreError = GraphError::ConnectivityUnreachable.into();
        assert!(std::error::Error::source(&err).is_some());
        let err: CoreError = ModelError::EmptyTopology.into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}

//! Shared fixtures for the `diffuse` Criterion benchmarks.

#![forbid(unsafe_code)]

use diffuse_core::ReliabilityTree;
use diffuse_graph::{generators, maximum_reliability_tree};
use diffuse_model::{Configuration, Probability, ProcessId, Topology};

/// A standard benchmark fixture: circulant topology with uniform loss.
pub fn fixture(n: u32, connectivity: u32, loss: f64) -> (Topology, Configuration) {
    let topology = generators::circulant(n, connectivity).expect("valid circulant");
    let config = Configuration::uniform(
        &topology,
        Probability::ZERO,
        Probability::new(loss).expect("valid loss"),
    );
    (topology, config)
}

/// The labelled MRT of a fixture, rooted at `p0`.
pub fn fixture_tree(n: u32, connectivity: u32, loss: f64) -> ReliabilityTree {
    let (topology, config) = fixture(n, connectivity, loss);
    let mrt =
        maximum_reliability_tree(&topology, &config, ProcessId::new(0)).expect("connected fixture");
    ReliabilityTree::from_spanning_tree(&mrt, &config).expect("labelled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (t, c) = fixture(50, 4, 0.05);
        assert_eq!(t.process_count(), 50);
        assert_eq!(c.loss_count(), t.link_count());
        let tree = fixture_tree(50, 4, 0.05);
        assert_eq!(tree.link_count(), 49);
    }
}

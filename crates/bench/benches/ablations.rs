//! Ablation benchmarks for the design decisions called out in
//! DESIGN.md §6: greedy vs exhaustive optimization, Eq. 1 vs Eq. 2 reach
//! evaluation, reconciliation/correction modes, and copy-on-write belief
//! adoption.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use diffuse_bayes::{BeliefEstimator, Estimate};
use diffuse_bench::fixture_tree;
use diffuse_core::{
    optimize, optimize_exhaustive, reach, reach_recursive, AdaptiveParams, MessageVector,
};
use diffuse_experiments::convergence_run;
use diffuse_graph::generators;
use diffuse_model::Probability;

fn bench_greedy_vs_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    // Small tree so the exponential oracle terminates.
    let tree = fixture_tree(7, 2, 0.2);
    group.bench_function("greedy", |b| b.iter(|| optimize(&tree, 0.95).unwrap()));
    group.bench_function("exhaustive_oracle", |b| {
        b.iter(|| optimize_exhaustive(&tree, 0.95, 5).unwrap())
    });
    group.finish();
}

fn bench_reach_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("reach_ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let tree = fixture_tree(100, 8, 0.05);
    let m = MessageVector::ones(tree.link_count());
    group.bench_function("iterative_eq2", |b| b.iter(|| reach(&tree, &m)));
    group.bench_function("recursive_eq1", |b| {
        b.iter(|| reach_recursive(&tree, &m, tree.root()))
    });
    group.finish();
}

fn bench_reconcile_modes(c: &mut Criterion) {
    // Wall-clock cost of a fixed-length convergence attempt under the
    // default and the paper-literal estimator semantics (accuracy is
    // compared in tests; this tracks the runtime cost).
    let mut group = c.benchmark_group("reconcile_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let topology = generators::ring(16).unwrap();
    let loss = Probability::new(0.05).unwrap();
    for (name, params) in [
        ("seqgap_exact", AdaptiveParams::default()),
        ("paper_literal", AdaptiveParams::default().paper_literal()),
    ] {
        let topology = topology.clone();
        group.bench_function(name, move |b| {
            b.iter(|| {
                convergence_run(
                    &topology,
                    loss,
                    Probability::ZERO,
                    &params,
                    0.02,
                    400, // fixed budget: measure cost, not convergence
                    10,
                    7,
                )
            })
        });
    }
    group.finish();
}

fn bench_estimate_adoption(c: &mut Criterion) {
    // COW adoption (the implementation) vs a forced deep copy of the
    // belief vector — the epidemic exchange's hot path.
    let mut group = c.benchmark_group("adoption_ablation");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    let mut theirs = Estimate::first_hand(100);
    theirs.beliefs_mut().decrease_reliability(5);
    group.bench_function("cow_adopt", |b| {
        b.iter(|| {
            let mut mine = Estimate::unknown(100);
            mine.adopt_if_better(&theirs);
            mine
        })
    });
    group.bench_function("deep_copy_adopt", |b| {
        b.iter(|| {
            // Rebuild the belief vector from raw values: what adoption
            // would cost without structural sharing.
            Estimate::from_parts(
                BeliefEstimator::from_beliefs(theirs.beliefs().beliefs().to_vec()).unwrap(),
                theirs.distortion().incremented(),
            )
        })
    });
    group.finish();
}

fn bench_interval_resolution(c: &mut Criterion) {
    // U sweep: update cost scales with the number of intervals.
    let mut group = c.benchmark_group("intervals_ablation");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for u in [10usize, 100, 400] {
        group.bench_function(format!("observe_u{u}"), |b| {
            let mut e = BeliefEstimator::new(u);
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                e.observe(i % 10 == 0);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_vs_exhaustive,
    bench_reach_forms,
    bench_reconcile_modes,
    bench_estimate_adoption,
    bench_interval_resolution
);
criterion_main!(benches);

//! One benchmark per paper table/figure: each measures the cost of
//! regenerating one representative point of the corresponding experiment
//! (the full sweeps run via `repro`; see EXPERIMENTS.md for the numbers).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use diffuse_core::analysis;
use diffuse_experiments::fig4::Panel;
use diffuse_experiments::{fig1, fig4, fig5, fig6, hetero, refine, table1, Effort};

/// A deliberately small effort so benches stay fast; shapes are still
/// the paper's.
fn bench_effort() -> Effort {
    Effort {
        gossip_runs: 10,
        graphs: 1,
        max_ticks: 600,
        tolerance: 0.03,
        check_every: 10,
        connectivities: vec![6],
        sizes: vec![40],
        threads: 1,
        workers: vec![1],
        seed: 0xBE9C,
        quick: true,
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("closed_form_table", |b| b.iter(fig1::run));
    group.bench_function("two_path_monte_carlo", |b| {
        b.iter(|| fig1::monte_carlo_check(6, 0.05, 4.0, 2_000, 3))
    });
    group.bench_function("message_ratio_point", |b| {
        b.iter(|| analysis::message_ratio(10.0, 1e-4).unwrap())
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("belief_table", |b| b.iter(table1::run));
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let effort = bench_effort();
    group.bench_function("point_c6_L003", |b| {
        b.iter(|| fig4::measure_point(6, 0.03, Panel::LossSweep, &effort))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let effort = bench_effort();
    group.bench_function("convergence_point_c6_L001", |b| {
        b.iter(|| fig5::measure_point(6, 0.01, Panel::LossSweep, &effort))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let effort = bench_effort();
    group.bench_function("ring_point_n40", |b| {
        b.iter(|| fig6::measure_point(fig6::Family::Ring, 40, &effort))
    });
    group.bench_function("tree_point_n40", |b| {
        b.iter(|| fig6::measure_point(fig6::Family::RandomTree, 40, &effort))
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let effort = bench_effort();
    group.bench_function("hetero_point", |b| {
        b.iter(|| hetero::measure_point(0.3, &effort))
    });
    group.bench_function("refine_errors_n200", |b| {
        b.iter(|| refine::errors_after(200, 0.03, 3, 9))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_table1,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_extensions
);
criterion_main!(benches);

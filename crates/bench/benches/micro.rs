//! Micro-benchmarks of the paper's building blocks: MRT construction
//! (Appendix B), the reach function (Eq. 2), the greedy optimizer
//! (Algorithm 2), Bayesian belief updates (Algorithm 5), heartbeat
//! processing (Algorithm 4, Event 1), and the wire codec.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffuse_bayes::BeliefEstimator;
use diffuse_bench::{fixture, fixture_tree};
use diffuse_core::{
    optimize, optimize_greedy, reach, Actions, AdaptiveBroadcast, AdaptiveParams, LegacyTickShim,
    MessageVector, Protocol, ProtocolActor,
};
use diffuse_experiments::scale::{converged_params, KernelOrderSystem};
use diffuse_graph::maximum_reliability_tree;
use diffuse_model::ProcessId;
use diffuse_net::codec::{decode_message, encode_message};
use diffuse_sim::{SimOptions, SimTime, Simulation};

fn bench_mrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrt");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &(n, k) in &[(100u32, 8u32), (100, 20), (240, 8)] {
        let (topology, config) = fixture(n, k, 0.05);
        group.bench_with_input(
            BenchmarkId::new("prim", format!("n{n}_k{k}")),
            &(topology, config),
            |b, (t, cfg)| b.iter(|| maximum_reliability_tree(t, cfg, ProcessId::new(0)).unwrap()),
        );
    }
    group.finish();
}

fn bench_reach_and_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &(n, loss) in &[(100u32, 0.01f64), (100, 0.07), (240, 0.07)] {
        let tree = fixture_tree(n, 8, loss);
        let m = MessageVector::ones(tree.link_count());
        group.bench_with_input(
            BenchmarkId::new("reach_eq2", format!("n{n}_L{loss}")),
            &tree,
            |b, t| b.iter(|| reach(t, &m)),
        );
        // `optimize` rides the O(L log L) waterfilling solver; the bench
        // id predates it and is kept stable for the BENCH_micro.json
        // trajectory.
        group.bench_with_input(
            BenchmarkId::new("greedy_k9999", format!("n{n}_L{loss}")),
            &tree,
            |b, t| b.iter(|| optimize(t, 0.9999).unwrap()),
        );
        // The increment-at-a-time reference greedy, for the ablation:
        // its cost scales with the plan's total message count.
        group.bench_with_input(
            BenchmarkId::new("greedy_reference_k9999", format!("n{n}_L{loss}")),
            &tree,
            |b, t| b.iter(|| optimize_greedy(t, 0.9999).unwrap()),
        );
    }
    group.finish();
}

fn bench_bayes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("observe_u100", |b| {
        let mut e = BeliefEstimator::new(100);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            e.observe(i % 20 == 0);
        });
    });
    group.bench_function("batch_decrease_1000_log_space", |b| {
        b.iter(|| {
            let mut e = BeliefEstimator::new(100);
            e.decrease_reliability(1000);
            e
        });
    });
    group.finish();
}

/// One full heartbeat round (emit + suspicion scan + self tick on every
/// node, then every heartbeat merged at its receiver), driving the
/// production `on_event` path directly — no shim or kernel overhead, so
/// the number stays comparable across PRs.
fn heartbeat_round(
    b: &mut criterion::Bencher,
    topology: &diffuse_model::Topology,
    params: &AdaptiveParams,
) {
    use diffuse_core::Event;
    let all: Vec<ProcessId> = topology.processes().collect();
    let mut nodes: Vec<AdaptiveBroadcast> = all
        .iter()
        .map(|&id| {
            AdaptiveBroadcast::new(
                id,
                all.clone(),
                topology.neighbors(id).collect(),
                params.clone(),
            )
        })
        .collect();
    let mut actions = Actions::new();
    let mut tick = 0u64;
    b.iter(|| {
        tick += 1;
        let now = SimTime::new(tick);
        let mut inboxes: Vec<(usize, ProcessId, diffuse_core::Message)> = Vec::new();
        for node in nodes.iter_mut() {
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::HEARTBEAT),
                &mut actions,
            );
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::SUSPICION),
                &mut actions,
            );
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::SELF_TICK),
                &mut actions,
            );
            let from = node.id();
            for (to, m) in actions.take_sends() {
                // Fixture ids are dense 0..n: direct index routing.
                inboxes.push((to.index() as usize, from, m));
            }
            actions.clear();
        }
        for (target, from, m) in inboxes {
            nodes[target].handle_message(now, from, m, &mut actions);
            actions.clear();
        }
    });
}

fn bench_heartbeat_processing(c: &mut Criterion) {
    // End-to-end cost of one heartbeat round, on the default (delta)
    // path and on the full-view reference path — the ratio of the two
    // 100-node rounds is the delta-heartbeat speedup recorded in
    // BENCH_micro.json.
    let mut group = c.benchmark_group("heartbeat");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let (topo30, _) = fixture(30, 4, 0.0);
    group.bench_function("round_30_nodes", |b| {
        heartbeat_round(b, &topo30, &AdaptiveParams::default())
    });
    let (topo100, _) = fixture(100, 4, 0.0);
    group.bench_function("round_100_nodes", |b| {
        heartbeat_round(b, &topo100, &AdaptiveParams::default())
    });
    group.bench_function("round_100_nodes_full_view", |b| {
        heartbeat_round(b, &topo100, &AdaptiveParams::default().with_full_views())
    });
    group.bench_function("round_100_nodes_converged", |b| {
        converged_round(b, &topo100, &converged_params())
    });
    group.bench_function("round_100_nodes_converged_full_view", |b| {
        converged_round(b, &topo100, &converged_params().with_full_views())
    });
    group.finish();
}

/// One converged-regime heartbeat round (see [`KernelOrderSystem`]).
fn converged_round(
    b: &mut criterion::Bencher,
    topology: &diffuse_model::Topology,
    params: &AdaptiveParams,
) {
    let mut system = KernelOrderSystem::warmed(topology, params, 400);
    b.iter(|| system.round());
}

/// Per-operation costs of the delta machinery on a converged 100-node
/// system: copy-on-write view sync + delta assembly (`build_delta`),
/// changed-entry merge (`merge_delta`), and the wire codec on a
/// steady-state delta frame.
fn bench_delta_view_ops(c: &mut Criterion) {
    use diffuse_core::{Event, Message};
    let mut group = c.benchmark_group("view");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let (topology, _) = fixture(100, 4, 0.0);
    let all: Vec<ProcessId> = topology.processes().collect();
    let mut system = KernelOrderSystem::warmed(&topology, &converged_params(), 400);
    let mut actions = Actions::new();
    let mut tick = system.now().ticks();
    // A steady-state delta frame (node 1 → node 0) for the merge and
    // codec benches.
    let (sender_idx, receiver_idx) = (1usize, 0usize);
    let delta_message = system
        .pending
        .iter()
        .find(|(target, from, m)| {
            *target as usize == receiver_idx
                && *from == all[sender_idx]
                && matches!(
                    m,
                    Message::Heartbeat(diffuse_core::HeartbeatMessage {
                        view: diffuse_core::HeartbeatView::Delta(_),
                        ..
                    })
                )
        })
        .map(|(_, _, m)| m.clone())
        .expect("converged system emits delta heartbeats");
    let nodes = &mut system.nodes;

    group.bench_function("build_delta", |b| {
        // Each iteration is one steady-state emission: CoW cache sync
        // (version walk, nothing to clone) + per-neighbor delta
        // assembly + sends.
        let node = &mut nodes[sender_idx];
        b.iter(|| {
            tick += 1;
            node.on_event(
                SimTime::new(tick),
                Event::Timer(AdaptiveBroadcast::HEARTBEAT),
                &mut actions,
            );
            let sends = actions.take_sends().len();
            actions.clear();
            sends
        })
    });
    group.bench_function("merge_delta", |b| {
        // Re-merging the same frame: reconcile dedups on the repeated
        // seq, and the changed-entry walk plus the unchanged-entry fast
        // paths run every iteration — the steady-state receive cost.
        let from = all[sender_idx];
        let node = &mut nodes[receiver_idx];
        b.iter(|| {
            node.handle_message(
                SimTime::new(tick),
                from,
                delta_message.clone(),
                &mut actions,
            );
            actions.clear();
        })
    });
    let frame = encode_message(&delta_message);
    group.bench_function("encode_delta", |b| {
        b.iter(|| encode_message(&delta_message))
    });
    group.bench_function("decode_delta", |b| {
        b.iter(|| decode_message(&frame).unwrap())
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    // A realistic heartbeat from a live 20-node adaptive instance.
    let (topology, _) = fixture(20, 4, 0.0);
    let all: Vec<ProcessId> = topology.processes().collect();
    let mut node = LegacyTickShim::new(AdaptiveBroadcast::new(
        ProcessId::new(0),
        all,
        topology.neighbors(ProcessId::new(0)).collect(),
        AdaptiveParams::default(),
    ));
    let mut actions = Actions::new();
    node.handle_tick(SimTime::new(1), &mut actions);
    let (_, heartbeat) = actions.take_sends().remove(0);
    let frame = encode_message(&heartbeat);
    group.bench_function("encode_heartbeat", |b| {
        b.iter(|| encode_message(&heartbeat))
    });
    group.bench_function("decode_heartbeat", |b| {
        b.iter(|| decode_message(&frame).unwrap())
    });
    group.finish();
}

/// The event-driven fast-forward win on a fig5-style convergence run in
/// the heartbeat-dominated idle regime (δ = 600: almost every tick is
/// idle). The baseline reconstructs the pre-redesign driver — poll every
/// deadline check (heartbeat guard, full suspicion scan, self-tick
/// guard) on every tick — which is behaviorally identical (guarded
/// no-ops) but pays the old per-tick cost. Both variants produce
/// bit-identical metrics; the ratio of the two benches is the speedup
/// captured in BENCH_micro.json.
fn bench_fast_forward(c: &mut Criterion) {
    use diffuse_core::{Event, Message};
    use diffuse_sim::{Actor, Context};

    /// The pre-redesign per-tick polling driver (see module docs).
    struct PollingAdaptive {
        protocol: AdaptiveBroadcast,
        actions: Actions,
    }

    impl PollingAdaptive {
        fn flush(&mut self, ctx: &mut Context<'_, Message>) {
            for (to, m) in self.actions.take_sends() {
                ctx.send(to, m);
            }
            self.actions.clear(); // polling driver: timer ops ignored
        }
    }

    impl Actor for PollingAdaptive {
        type Message = Message;

        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Message>,
            from: ProcessId,
            message: Message,
        ) {
            let now = ctx.now();
            self.protocol
                .on_event(now, Event::Message { from, message }, &mut self.actions);
            self.flush(ctx);
        }

        fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
            let now = ctx.now();
            for timer in [
                AdaptiveBroadcast::HEARTBEAT,
                AdaptiveBroadcast::SUSPICION,
                AdaptiveBroadcast::SELF_TICK,
            ] {
                self.protocol
                    .on_event(now, Event::Timer(timer), &mut self.actions);
            }
            self.flush(ctx);
        }

        fn on_recover(&mut self, ctx: &mut Context<'_, Message>, down_ticks: u64) {
            let now = ctx.now();
            self.protocol
                .on_event(now, Event::Recovery { down_ticks }, &mut self.actions);
            self.flush(ctx);
        }
    }

    let mut group = c.benchmark_group("fastforward");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let (topology, config) = fixture(100, 4, 0.0);
    let all: Vec<ProcessId> = topology.processes().collect();
    let delta = 600;
    let ticks = delta * 40;
    let params = AdaptiveParams::default()
        .with_heartbeat_period(delta)
        .with_self_tick_period(delta);

    group.bench_function("fig5_event_driven_d600", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                topology.clone(),
                config.clone(),
                |id| {
                    ProtocolActor::new(AdaptiveBroadcast::new(
                        id,
                        all.clone(),
                        topology.neighbors(id).collect(),
                        params.clone(),
                    ))
                },
                SimOptions::default().with_seed(1),
            );
            sim.run_ticks(ticks);
            sim.metrics().sent_total()
        })
    });
    group.bench_function("fig5_tick_polling_d600", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(
                topology.clone(),
                config.clone(),
                |id| PollingAdaptive {
                    protocol: AdaptiveBroadcast::new(
                        id,
                        all.clone(),
                        topology.neighbors(id).collect(),
                        params.clone(),
                    ),
                    actions: Actions::new(),
                },
                SimOptions::default().with_seed(1),
            );
            sim.run_ticks(ticks);
            sim.metrics().sent_total()
        })
    });
    group.finish();
}

/// The sharded executor against the deterministic kernel on one busy
/// gossip scenario: same seed, same reports (asserted once up front),
/// different execution engines. The workers/kernel ratio recorded in
/// BENCH_micro.json is a statement about the benchmark host — on a
/// single-core machine barrier lockstep is pure overhead and the ratio
/// sits at or below 1x; with ≥ 4 hardware threads it is the parallel
/// speedup.
fn bench_sharded_executor(c: &mut Criterion) {
    use diffuse_core::scenario::{Scenario, Workload};
    use diffuse_core::{Payload, ReferenceGossip};
    use diffuse_graph::generators;

    let n = 1000u32;
    let topology = generators::circulant(n, 8).unwrap();
    let mut workload = Workload::new();
    for i in 0..10u32 {
        workload = workload.broadcast(
            SimTime::new(u64::from(i) * 3),
            ProcessId::new((i * 97) % n),
            Payload::from(format!("b{i}").into_bytes()),
        );
    }
    let scenario = Scenario::builder(topology)
        .seed(7)
        .link_delay(1)
        .workload(workload)
        .build();
    let horizon = 80;
    let topology = scenario.topology.clone();
    let make = |id: ProcessId| ReferenceGossip::new(id, topology.neighbors(id).collect(), 8);

    // Loss-free scenario: every engine must produce the identical
    // report before its timing means anything.
    let kernel_report = scenario.run_sim(horizon, make);
    for workers in [4usize, 8] {
        let sharded = scenario.run_sim_sharded(horizon, workers, make);
        assert_eq!(kernel_report, sharded, "{workers} workers");
    }

    let mut group = c.benchmark_group("shard");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("kernel/n1000", |b| {
        b.iter(|| scenario.run_sim(horizon, make))
    });
    group.bench_function("workers4/n1000", |b| {
        b.iter(|| scenario.run_sim_sharded(horizon, 4, make))
    });
    group.bench_function("workers8/n1000", |b| {
        b.iter(|| scenario.run_sim_sharded(horizon, 8, make))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mrt,
    bench_reach_and_optimize,
    bench_bayes,
    bench_heartbeat_processing,
    bench_delta_view_ops,
    bench_codec,
    bench_fast_forward,
    bench_sharded_executor
);
criterion_main!(benches);

//! Experiment effort presets.

/// How much compute to spend on an experiment sweep.
///
/// `standard()` regenerates the paper's figures with enough Monte-Carlo
/// runs to show the shapes clearly on a laptop; `quick()` subsamples the
/// sweeps for smoke tests and CI. Field-level overrides compose on top of
/// either preset.
#[derive(Debug, Clone, PartialEq)]
pub struct Effort {
    /// Monte-Carlo runs per gossip calibration/measurement point.
    pub gossip_runs: u32,
    /// Random graphs per Figure-6 point.
    pub graphs: u32,
    /// Convergence-run tick cap.
    pub max_ticks: u64,
    /// Convergence tolerance (|estimate − truth|).
    pub tolerance: f64,
    /// Convergence predicate period, in ticks.
    pub check_every: u64,
    /// Network connectivities (neighbors per process) to sweep.
    pub connectivities: Vec<u32>,
    /// System sizes for the scalability experiment.
    pub sizes: Vec<u32>,
    /// Worker threads for independent sweep points.
    pub threads: usize,
    /// Shard worker counts the sharded-executor sweep compares
    /// (`repro scale`); `--workers N` pins a single count.
    pub workers: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// `true` for the subsampled smoke preset (experiments may shrink
    /// their scripts accordingly).
    pub quick: bool,
}

impl Effort {
    /// The full sweep (paper-shaped axes).
    pub fn standard() -> Self {
        Effort {
            gossip_runs: 200,
            graphs: 10,
            max_ticks: 4000,
            tolerance: 0.012,
            check_every: 10,
            connectivities: vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
            sizes: vec![100, 120, 140, 160, 180, 200, 220, 240],
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2),
            workers: vec![1, 4, 8],
            seed: 0xD1FF_0001,
            quick: false,
        }
    }

    /// A subsampled sweep for smoke tests.
    pub fn quick() -> Self {
        Effort {
            gossip_runs: 40,
            graphs: 3,
            max_ticks: 2500,
            tolerance: 0.02,
            check_every: 10,
            connectivities: vec![2, 8, 14, 20],
            sizes: vec![100, 160, 220],
            workers: vec![1, 4],
            quick: true,
            ..Effort::standard()
        }
    }
}

impl Default for Effort {
    fn default() -> Self {
        Effort::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_standard() {
        let q = Effort::quick();
        let s = Effort::standard();
        assert!(q.gossip_runs < s.gossip_runs);
        assert!(q.connectivities.len() < s.connectivities.len());
        assert!(q.sizes.len() < s.sizes.len());
        assert_eq!(Effort::default(), s);
    }
}

//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--csv] [--runs N] [--graphs N] [--seed N]
//!
//! experiments: fig1 table1 fig4a fig4b fig5a fig5b fig6 hetero refine all
//! ```

use std::process::ExitCode;

use diffuse_experiments::fig4::Panel;
use diffuse_experiments::{fig1, fig4, fig5, fig6, hetero, refine, table1, Effort, Table};

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("# {}", table.title());
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_aligned());
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig1|table1|fig4a|fig4b|fig5a|fig5b|fig6|hetero|refine|all> \
         [--quick] [--csv] [--runs N] [--graphs N] [--seed N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };

    let mut effort = if args.iter().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::standard()
    };
    let csv = args.iter().any(|a| a == "--csv");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse = |v: Option<&String>| v.and_then(|s| s.parse::<u64>().ok());
        match a.as_str() {
            "--runs" => {
                if let Some(v) = parse(it.next()) {
                    effort.gossip_runs = v as u32;
                }
            }
            "--graphs" => {
                if let Some(v) = parse(it.next()) {
                    effort.graphs = v as u32;
                }
            }
            "--seed" => {
                if let Some(v) = parse(it.next()) {
                    effort.seed = v;
                }
            }
            _ => {}
        }
    }

    let start = std::time::Instant::now();
    let tables: Vec<Table> = match experiment.as_str() {
        "fig1" => vec![fig1::run()],
        "table1" => vec![table1::run()],
        "fig4a" => vec![fig4::run(Panel::CrashSweep, &effort)],
        "fig4b" => vec![fig4::run(Panel::LossSweep, &effort)],
        "fig5a" => vec![fig5::run(Panel::CrashSweep, &effort)],
        "fig5b" => vec![fig5::run(Panel::LossSweep, &effort)],
        "fig6" => vec![fig6::run(&effort)],
        "hetero" => vec![hetero::run(&effort)],
        "refine" => vec![refine::run()],
        "all" => vec![
            fig1::run(),
            table1::run(),
            fig4::run(Panel::CrashSweep, &effort),
            fig4::run(Panel::LossSweep, &effort),
            fig5::run(Panel::CrashSweep, &effort),
            fig5::run(Panel::LossSweep, &effort),
            fig6::run(&effort),
            hetero::run(&effort),
            refine::run(),
        ],
        _ => return usage(),
    };

    for table in &tables {
        print_table(table, csv);
        println!();
    }
    eprintln!("[repro] {} finished in {:.1?}", experiment, start.elapsed());
    ExitCode::SUCCESS
}

//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--csv] [--runs N] [--graphs N] [--seed N]
//!
//! experiments: fig1 table1 fig4a fig4b fig5a fig5b fig6 hetero refine scenario scale all
//!
//! repro lint            # alias for `cargo run -p diffuse-lint -- check`
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use diffuse_experiments::fig4::Panel;
use diffuse_experiments::{
    fig1, fig4, fig5, fig6, hetero, refine, scale, scenarios, table1, Effort, Table,
};

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("# {}", table.title());
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_aligned());
    }
}

const USAGE: &str =
    "usage: repro <fig1|table1|fig4a|fig4b|fig5a|fig5b|fig6|hetero|refine|scenario|scale|all> \
     [--quick] [--csv] [--runs N] [--graphs N] [--seed N]\n       \
     repro lint   (determinism lint over the workspace; alias for `diffuse-lint check`)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// `repro lint`: thin alias for `cargo run -p diffuse-lint -- check`,
/// so the determinism gate is discoverable from the main binary.
fn run_lint() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("repro lint: cannot determine current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = diffuse_lint::find_workspace_root(&cwd) else {
        eprintln!("repro lint: no workspace root above {}", cwd.display());
        return ExitCode::from(2);
    };
    match diffuse_lint::run_check(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("repro lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            println!("repro lint: {} diagnostic(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("repro lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // Explicitly requested help goes to stdout and succeeds.
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };
    if experiment == "lint" {
        return run_lint();
    }

    let mut effort = if args.iter().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::standard()
    };
    let csv = args.iter().any(|a| a == "--csv");
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut parse = |flag: &str| -> Result<u64, ExitCode> {
            match it.next().map(|s| s.parse::<u64>()) {
                Some(Ok(v)) => Ok(v),
                Some(Err(_)) => {
                    eprintln!("repro: {flag} expects a number");
                    Err(usage())
                }
                None => {
                    eprintln!("repro: {flag} requires a value");
                    Err(usage())
                }
            }
        };
        match a.as_str() {
            "--quick" | "--csv" => {}
            "--runs" => match parse("--runs") {
                Ok(v) => effort.gossip_runs = v as u32,
                Err(code) => return code,
            },
            "--graphs" => match parse("--graphs") {
                Ok(v) => effort.graphs = v as u32,
                Err(code) => return code,
            },
            "--seed" => match parse("--seed") {
                Ok(v) => effort.seed = v,
                Err(code) => return code,
            },
            other => {
                eprintln!("repro: unrecognized option `{other}`");
                return usage();
            }
        }
    }

    #[allow(clippy::disallowed_methods)]
    // lint:allow(no-wall-clock): CLI progress timer for the operator; not part of any experiment's output.
    let start = std::time::Instant::now();
    let tables: Vec<Table> = match experiment.as_str() {
        "fig1" => vec![fig1::run()],
        "table1" => vec![table1::run()],
        "fig4a" => vec![fig4::run(Panel::CrashSweep, &effort)],
        "fig4b" => vec![fig4::run(Panel::LossSweep, &effort)],
        "fig5a" => vec![fig5::run(Panel::CrashSweep, &effort)],
        "fig5b" => vec![fig5::run(Panel::LossSweep, &effort)],
        "fig6" => vec![fig6::run(&effort)],
        "hetero" => vec![hetero::run(&effort)],
        "refine" => vec![refine::run()],
        "scenario" => scenarios::run(&effort),
        "scale" => vec![scale::run(&effort)],
        "all" => vec![
            fig1::run(),
            table1::run(),
            fig4::run(Panel::CrashSweep, &effort),
            fig4::run(Panel::LossSweep, &effort),
            fig5::run(Panel::CrashSweep, &effort),
            fig5::run(Panel::LossSweep, &effort),
            fig6::run(&effort),
            hetero::run(&effort),
            refine::run(),
        ],
        _ => return usage(),
    };

    for table in &tables {
        print_table(table, csv);
        println!();
    }
    eprintln!("[repro] {} finished in {:.1?}", experiment, start.elapsed());
    ExitCode::SUCCESS
}

//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--csv] [--runs N] [--graphs N] [--seed N] [--workers N]
//!
//! experiments: fig1 table1 fig4a fig4b fig5a fig5b fig6 hetero refine scenario scale all
//!
//! repro lint            # alias for `cargo run -p diffuse-lint -- check`
//! repro soak [--quick] [--adversary] [--nodes N] [--ticks N] [--seed N]
//!                       # chaos soak: multi-process UDP cluster under churn,
//!                       # or (--adversary) under a lying node + message
//!                       # adversary; the long `repro soak --adversary`
//!                       # profile is the nightly adversarial entry point
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use diffuse_experiments::fig4::Panel;
use diffuse_experiments::{
    fig1, fig4, fig5, fig6, hetero, refine, scale, scenarios, table1, Effort, Table,
};

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("# {}", table.title());
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_aligned());
    }
}

const USAGE: &str =
    "usage: repro <fig1|table1|fig4a|fig4b|fig5a|fig5b|fig6|hetero|refine|scenario|scale|all> \
     [--quick] [--csv] [--runs N] [--graphs N] [--seed N] [--workers N]\n       \
     repro lint   (determinism lint over the workspace; alias for `diffuse-lint check`)\n       \
     repro soak [--quick] [--adversary] [--nodes N] [--ticks N] [--seed N]   \
     (multi-process UDP soak under loss spikes, partition and crash+restart; \
     --adversary swaps the churn for a lying node + message adversary — the long \
     adversary profile is the nightly entry point)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// `repro lint`: thin alias for `cargo run -p diffuse-lint -- check`,
/// so the determinism gate is discoverable from the main binary.
fn run_lint() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("repro lint: cannot determine current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = diffuse_lint::find_workspace_root(&cwd) else {
        eprintln!("repro lint: no workspace root above {}", cwd.display());
        return ExitCode::from(2);
    };
    match diffuse_lint::run_check(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("repro lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            println!("repro lint: {} diagnostic(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("repro lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// `repro soak`: launches the multi-process UDP chaos soak — churn
/// profile (loss spikes, partition + heal, hard crash + restart) or,
/// with `--adversary`, one lying node plus a message adversary — and
/// reports whether the delivery guarantee held (and, adversarially,
/// whether the interference was contained).
fn run_soak_cli(args: &[String]) -> ExitCode {
    let mut options = if args.iter().any(|a| a == "--quick") {
        diffuse_net::SoakOptions::quick()
    } else {
        diffuse_net::SoakOptions::standard()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut parse = |flag: &str| -> Result<u64, ExitCode> {
            match it.next().map(|s| s.parse::<u64>()) {
                Some(Ok(v)) => Ok(v),
                _ => {
                    eprintln!("repro soak: {flag} expects a number");
                    Err(usage())
                }
            }
        };
        match a.as_str() {
            "--quick" => {}
            "--adversary" => options.adversary = true,
            "--nodes" => match parse("--nodes") {
                Ok(v) if v >= 8 => options.nodes = v as u32,
                Ok(v) => {
                    eprintln!("repro soak: --nodes must be at least 8, got {v}");
                    return ExitCode::FAILURE;
                }
                Err(code) => return code,
            },
            "--ticks" => match parse("--ticks") {
                Ok(v) => options.load_ticks = v,
                Err(code) => return code,
            },
            "--seed" => match parse("--seed") {
                Ok(v) => options.seed = v,
                Err(code) => return code,
            },
            other => {
                eprintln!("repro soak: unrecognized option `{other}`");
                return usage();
            }
        }
    }

    println!(
        "[soak] {} processes, {} load ticks, base loss {}, seed {}",
        options.nodes, options.load_ticks, options.base_loss, options.seed
    );
    let report = match diffuse_net::run_soak(options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro soak: cluster failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "[soak] accepted {} broadcasts from correct origins (+{} exempt)",
        report.accepted, report.accepted_exempt
    );
    if let Some(crashed) = report.crashed {
        println!(
            "[soak] crashed+restarted {:?}; {} correct processes; {} wire messages; \
             {} malformed frames survived",
            crashed,
            report.correct.len(),
            report.sent_total,
            report.malformed_frames
        );
    }
    if let Some(liar) = report.liar {
        let c = &report.containment;
        println!(
            "[soak] liar {:?}: {} corrupted heartbeats on the wire, {} entries offered, \
             {} adopted (bounded), {} bound violations; adversary suppressed {} frames; \
             {} future acks rejected; {} faults skipped",
            liar,
            c.corrupt_emissions,
            c.corrupt_offers,
            c.corrupt_adoptions,
            c.bound_violations,
            c.suppressed_emissions,
            c.future_acks_rejected,
            report.skipped_faults
        );
        if !report.contained() {
            println!("[soak] FAIL: adversarial interference was absent or uncontained");
            return ExitCode::FAILURE;
        }
    }
    if report.complete() {
        println!(
            "[soak] PASS: every correct process delivered all {} broadcasts",
            report.accepted
        );
        ExitCode::SUCCESS
    } else {
        println!("[soak] FAIL: missing deliveries: {:?}", report.missing);
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // Must run first: soak clusters re-execute this binary to spawn
    // node workers, and worker invocations never return.
    diffuse_net::maybe_run_udp_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // Explicitly requested help goes to stdout and succeeds.
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };
    if experiment == "lint" {
        return run_lint();
    }
    if experiment == "soak" {
        return run_soak_cli(&args[1..]);
    }

    let mut effort = if args.iter().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::standard()
    };
    let csv = args.iter().any(|a| a == "--csv");
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut parse = |flag: &str| -> Result<u64, ExitCode> {
            match it.next().map(|s| s.parse::<u64>()) {
                Some(Ok(v)) => Ok(v),
                Some(Err(_)) => {
                    eprintln!("repro: {flag} expects a number");
                    Err(usage())
                }
                None => {
                    eprintln!("repro: {flag} requires a value");
                    Err(usage())
                }
            }
        };
        match a.as_str() {
            "--quick" | "--csv" => {}
            "--runs" => match parse("--runs") {
                Ok(v) => effort.gossip_runs = v as u32,
                Err(code) => return code,
            },
            "--graphs" => match parse("--graphs") {
                Ok(v) => effort.graphs = v as u32,
                Err(code) => return code,
            },
            "--seed" => match parse("--seed") {
                Ok(v) => effort.seed = v,
                Err(code) => return code,
            },
            "--workers" => match parse("--workers") {
                Ok(v) if v >= 1 => effort.workers = vec![v as usize],
                Ok(v) => {
                    eprintln!("repro: --workers must be at least 1, got {v}");
                    return ExitCode::FAILURE;
                }
                Err(code) => return code,
            },
            other => {
                eprintln!("repro: unrecognized option `{other}`");
                return usage();
            }
        }
    }

    #[allow(clippy::disallowed_methods)]
    // lint:allow(no-wall-clock): CLI progress timer for the operator; not part of any experiment's output.
    let start = std::time::Instant::now();
    let tables: Vec<Table> = match experiment.as_str() {
        "fig1" => vec![fig1::run()],
        "table1" => vec![table1::run()],
        "fig4a" => vec![fig4::run(Panel::CrashSweep, &effort)],
        "fig4b" => vec![fig4::run(Panel::LossSweep, &effort)],
        "fig5a" => vec![fig5::run(Panel::CrashSweep, &effort)],
        "fig5b" => vec![fig5::run(Panel::LossSweep, &effort)],
        "fig6" => vec![fig6::run(&effort)],
        "hetero" => vec![hetero::run(&effort)],
        "refine" => vec![refine::run()],
        "scenario" => scenarios::run(&effort),
        "scale" => vec![scale::run(&effort), scale::run_sharded(&effort)],
        "all" => vec![
            fig1::run(),
            table1::run(),
            fig4::run(Panel::CrashSweep, &effort),
            fig4::run(Panel::LossSweep, &effort),
            fig5::run(Panel::CrashSweep, &effort),
            fig5::run(Panel::LossSweep, &effort),
            fig6::run(&effort),
            hetero::run(&effort),
            refine::run(),
        ],
        _ => return usage(),
    };

    for table in &tables {
        print_table(table, csv);
        println!();
    }
    eprintln!("[repro] {} finished in {:.1?}", experiment, start.elapsed());
    ExitCode::SUCCESS
}

//! Figure 6: scalability of the approximation activity — convergence
//! effort versus system size on rings and random trees.
//!
//! The paper fixes no failure probabilities for this experiment; we use
//! `P = 0, L = 0.01` (documented in EXPERIMENTS.md) and average each
//! point over several random graphs, as the paper did (~100 graphs; the
//! default here is smaller and configurable via [`Effort::graphs`]).

use diffuse_core::AdaptiveParams;
use diffuse_graph::generators;
use diffuse_model::{Probability, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::convergence_run;
use crate::parallel::parallel_map;
use crate::table::{fmt, Table};
use crate::Effort;

/// The loss probability used for the scalability sweep.
pub const FIG6_LOSS: f64 = 0.01;

/// The two topology families of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// A ring — the worst case, information crosses O(n) hops.
    Ring,
    /// A uniformly random labeled tree — the practical case.
    RandomTree,
}

impl Family {
    fn build(self, n: u32, seed: u64) -> Topology {
        match self {
            Family::Ring => generators::ring(n).expect("n >= 3"),
            Family::RandomTree => {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::random_tree(n, &mut rng).expect("n >= 2")
            }
        }
    }
}

/// Mean messages/link to convergence for one (family, size) point,
/// averaged over `effort.graphs` seeds.
pub fn measure_point(family: Family, n: u32, effort: &Effort) -> f64 {
    let loss = Probability::new(FIG6_LOSS).expect("valid");
    let mut total = 0.0;
    for g in 0..effort.graphs {
        let seed = effort.seed ^ ((n as u64) << 16) ^ (g as u64);
        let topology = family.build(n, seed);
        let out = convergence_run(
            &topology,
            loss,
            Probability::ZERO,
            &AdaptiveParams::default(),
            effort.tolerance,
            effort.max_ticks,
            effort.check_every,
            seed ^ 0x5117,
        );
        total += out.messages_per_link;
    }
    total / effort.graphs.max(1) as f64
}

/// Regenerates Figure 6.
pub fn run(effort: &Effort) -> Table {
    let points: Vec<(Family, u32)> = effort
        .sizes
        .iter()
        .flat_map(|&n| [(Family::Ring, n), (Family::RandomTree, n)])
        .collect();
    let measured = parallel_map(&points, effort.threads, |&(family, n)| {
        (family, n, measure_point(family, n, effort))
    });

    let mut table = Table::new(
        "Figure 6 — scalability: heartbeat messages per link to convergence",
        &["processes", "ring", "tree"],
    );
    for &n in &effort.sizes {
        let find = |family: Family| {
            measured
                .iter()
                .find(|(f, m, _)| *f == family && *m == n)
                .map(|(_, _, v)| *v)
                .expect("all points measured")
        };
        table.push_row(vec![
            n.to_string(),
            fmt(find(Family::Ring)),
            fmt(find(Family::RandomTree)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-second ring-convergence Monte-Carlo; CI runs it in release via --ignored"]
    fn convergence_effort_grows_with_system_size() {
        // Figure 6's claim is scalability: the approximation effort per
        // link grows with the system size, with the ring as the worst
        // case. The ring-vs-tree *family* gap at a fixed size is only a
        // few percent and needs ~100 graphs to resolve (the paper's
        // sample); asserting it over the 2 graphs a unit test can afford
        // is a coin flip. The size effect is ~2x and robust, so that is
        // what we pin here.
        let effort = Effort {
            graphs: 2,
            max_ticks: 2500,
            tolerance: 0.02,
            ..Effort::quick()
        };
        let small = measure_point(Family::Ring, 12, &effort);
        let large = measure_point(Family::Ring, 60, &effort);
        assert!(
            large > small,
            "a 60-ring ({large}) should need more effort per link than a \
             12-ring ({small})"
        );
    }

    #[test]
    fn families_build_expected_shapes() {
        let ring = Family::Ring.build(10, 1);
        assert_eq!(ring.link_count(), 10);
        let tree = Family::RandomTree.build(10, 1);
        assert_eq!(tree.link_count(), 9);
    }
}

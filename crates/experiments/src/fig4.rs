//! Figure 4: reference-gossip vs optimal message ratio as a function of
//! network connectivity.
//!
//! For every connectivity (neighbors per process, circulant topologies
//! over 100 processes) and every failure probability series, the harness
//! calibrates the reference algorithm's step budget until Monte-Carlo
//! trials reach every process (the paper's `K = 0.9999` criterion,
//! bounded by the run count), measures its mean data-message cost, and
//! divides by the optimal algorithm's deterministic cost
//! `c(optimize(mrt, K))`.

use diffuse_graph::generators;
use diffuse_model::{Configuration, Probability};

use crate::harness::{
    adaptive_broadcast_cost, calibrate_gossip_steps_confident, gossip_mean_messages,
    CalibrationSettings,
};
use crate::parallel::parallel_map;
use crate::table::{fmt, Table};
use crate::Effort;

/// Target reliability used throughout the paper's evaluation.
pub const TARGET_RELIABILITY: f64 = 0.9999;

/// System size used by Figures 4 and 5.
pub const SYSTEM_SIZE: u32 = 100;

/// The failure-probability series of each panel.
pub const FIG4_SERIES: [f64; 4] = [0.01, 0.03, 0.05, 0.07];

/// Which panel of Figure 4 (and 5) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Vary crash probability `P`, keep links reliable (`L = 0`).
    CrashSweep,
    /// Vary loss probability `L`, keep processes reliable (`P = 0`).
    LossSweep,
}

impl Panel {
    fn split(self, value: f64) -> (Probability, Probability) {
        let v = Probability::new(value).expect("series probabilities are valid");
        match self {
            Panel::CrashSweep => (v, Probability::ZERO),
            Panel::LossSweep => (Probability::ZERO, v),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Panel::CrashSweep => "P",
            Panel::LossSweep => "L",
        }
    }
}

/// One measured point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Neighbors per process.
    pub connectivity: u32,
    /// The swept failure probability.
    pub probability: f64,
    /// Calibrated reference step budget.
    pub steps: u32,
    /// Mean reference data messages per broadcast.
    pub reference_messages: f64,
    /// Mean reference acknowledgements per broadcast.
    pub reference_acks: f64,
    /// Deterministic optimal/adaptive messages per broadcast.
    pub optimal_messages: u64,
    /// The figure's y value: all reference messages (data + ACKs) over
    /// the optimal cost. The paper's axis counts *messages exchanged*,
    /// and the reference algorithm's ACKs are messages; the adaptive
    /// algorithm sends none.
    pub ratio: f64,
    /// Reference data messages only, over the optimal cost (secondary
    /// metric recorded in EXPERIMENTS.md).
    pub data_ratio: f64,
}

/// Measures one point of Figure 4.
pub fn measure_point(
    connectivity: u32,
    probability: f64,
    panel: Panel,
    effort: &Effort,
) -> Fig4Point {
    let topology = generators::circulant(SYSTEM_SIZE, connectivity)
        .expect("connectivity sweep is realizable for n = 100");
    let (crash, loss) = panel.split(probability);
    let optimal_messages = adaptive_broadcast_cost(&topology, loss, crash, TARGET_RELIABILITY)
        .expect("uniform configurations are optimizable");
    let seed = effort.seed ^ ((connectivity as u64) << 32) ^ (probability * 1e4) as u64;
    // Sequential confidence-bounded calibration: certify a delivery
    // probability comparable to what `gossip_runs` all-success trials
    // certified before (rule of three), at an explicit 95% confidence.
    let loss_cfg = Configuration::uniform(&topology, Probability::ZERO, loss);
    let settings = CalibrationSettings::comparable_to_runs(effort.gossip_runs, 512);
    let steps = calibrate_gossip_steps_confident(&topology, &loss_cfg, crash, settings, seed)
        .unwrap_or(512);
    let (reference_messages, reference_acks) = gossip_mean_messages(
        &topology,
        loss,
        crash,
        steps,
        effort.gossip_runs,
        seed ^ 0xA5A5,
    );
    Fig4Point {
        connectivity,
        probability,
        steps,
        reference_messages,
        reference_acks,
        optimal_messages,
        ratio: (reference_messages + reference_acks) / optimal_messages as f64,
        data_ratio: reference_messages / optimal_messages as f64,
    }
}

/// Regenerates one panel of Figure 4 as a table of ratio-vs-connectivity
/// series.
pub fn run(panel: Panel, effort: &Effort) -> Table {
    let points: Vec<(u32, f64)> = effort
        .connectivities
        .iter()
        .flat_map(|&c| FIG4_SERIES.iter().map(move |&p| (c, p)))
        .collect();
    let measured = parallel_map(&points, effort.threads, |&(c, p)| {
        measure_point(c, p, panel, effort)
    });

    let label = panel.label();
    let suffix = match panel {
        Panel::CrashSweep => "(a) reliable links",
        Panel::LossSweep => "(b) reliable processes",
    };
    let columns: Vec<String> = std::iter::once("connectivity".to_string())
        .chain(FIG4_SERIES.iter().map(|p| format!("{label}={p}")))
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Figure 4{suffix} — reference/optimal message ratio"),
        &column_refs,
    );
    for &c in &effort.connectivities {
        let mut row = vec![c.to_string()];
        for &p in &FIG4_SERIES {
            let point = measured
                .iter()
                .find(|m| m.connectivity == c && m.probability == p)
                .expect("all points measured");
            row.push(fmt(point.ratio));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_effort() -> Effort {
        Effort {
            gossip_runs: 12,
            connectivities: vec![4, 12],
            threads: 2,
            ..Effort::quick()
        }
    }

    #[test]
    #[ignore = "multi-second 100-process Monte-Carlo; CI runs it in release via --ignored"]
    fn ratio_exceeds_one_and_grows_with_connectivity() {
        let effort = tiny_effort();
        let low = measure_point(4, 0.03, Panel::LossSweep, &effort);
        let high = measure_point(12, 0.03, Panel::LossSweep, &effort);
        assert!(
            low.ratio > 1.0,
            "reference must cost more than optimal: {low:?}"
        );
        assert!(
            high.ratio > low.ratio,
            "denser networks favor the adaptive algorithm: {low:?} vs {high:?}"
        );
        // The flood covers every link; the tree uses n-1 of them. With
        // three times the links, even data-only traffic must be higher.
        assert!(high.data_ratio > low.data_ratio);
    }

    #[test]
    fn crash_panel_measures_sane_points() {
        let effort = tiny_effort();
        let point = measure_point(4, 0.03, Panel::CrashSweep, &effort);
        assert!(point.steps >= 1);
        assert!(point.reference_messages > 0.0);
        assert!(point.optimal_messages >= 99); // one per MRT link at least
    }

    #[test]
    fn run_produces_full_table() {
        let effort = tiny_effort();
        let t = run(Panel::LossSweep, &effort);
        assert_eq!(t.row_count(), effort.connectivities.len());
        assert!(t.to_aligned().contains("L=0.07"));
    }
}

//! Extension experiment (paper §7 future work): dynamic refinement of the
//! Bayesian probability intervals.
//!
//! Compares estimation error after `N` Bernoulli observations for a
//! coarse estimator (`U = 10`), a fine one (`U = 100`), and a coarse one
//! that doubles its resolution whenever the posterior concentrates — the
//! paper's "dynamically increasing the number of probabilistic intervals
//! when better precision is required".

use diffuse_bayes::BeliefEstimator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::{fmt, Table};

/// Refinement trigger: refine once the MAP interval holds this much mass.
pub const REFINE_THRESHOLD: f64 = 0.5;

/// Maximum resolution the refining estimator may reach.
pub const REFINE_CAP: usize = 160;

/// Absolute estimation errors `(coarse, fine, refining)` after `n`
/// observations of a Bernoulli(`rate`) failure process, averaged over
/// `trials` seeds.
pub fn errors_after(n: u32, rate: f64, trials: u32, seed: u64) -> (f64, f64, f64) {
    let mut totals = (0.0, 0.0, 0.0);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed ^ t as u64);
        let mut coarse = BeliefEstimator::new(10);
        let mut fine = BeliefEstimator::new(100);
        let mut refining = BeliefEstimator::new(10);
        for _ in 0..n {
            let failed = rng.gen_bool(rate);
            coarse.observe(failed);
            fine.observe(failed);
            refining.observe(failed);
            let map = refining.map_interval();
            if refining.belief(map) >= REFINE_THRESHOLD && refining.intervals() < REFINE_CAP {
                refining.refine();
            }
        }
        totals.0 += (coarse.mean().value() - rate).abs();
        totals.1 += (fine.mean().value() - rate).abs();
        totals.2 += (refining.mean().value() - rate).abs();
    }
    let d = trials.max(1) as f64;
    (totals.0 / d, totals.1 / d, totals.2 / d)
}

/// Regenerates the refinement extension table for a 3% failure rate.
pub fn run() -> Table {
    let rate = 0.03;
    let mut table = Table::new(
        "Extension — dynamic interval refinement (|mean − 0.03| after N observations)",
        &["N", "U=10", "U=100", "U=10 + refine"],
    );
    for n in [50u32, 100, 200, 400, 800] {
        let (coarse, fine, refining) = errors_after(n, rate, 20, 0xF00D);
        table.push_row(vec![n.to_string(), fmt(coarse), fmt(fine), fmt(refining)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_beats_coarse_eventually() {
        let (coarse, fine, refining) = errors_after(800, 0.03, 30, 1);
        assert!(
            refining < coarse,
            "refined ({refining}) should beat coarse ({coarse})"
        );
        // And should be in the same league as the always-fine estimator.
        assert!(refining < fine * 3.0 + 0.01);
    }

    #[test]
    fn table_has_all_rows() {
        let t = run();
        assert_eq!(t.row_count(), 5);
    }
}

//! Table 1: Bayesian belief adaptation after one failure suspicion
//! (`U = 5`).

use diffuse_bayes::BeliefEstimator;

use crate::table::Table;

/// Regenerates Table 1: the interval bounds, the uniform prior (case a)
/// and the posterior after one suspicion (case b).
pub fn run() -> Table {
    let mut table = Table::new(
        "Table 1 — failure beliefs before/after one suspicion (U = 5)",
        &["u", "interval", "P_B (initial)", "P_B (after suspicion)"],
    );
    let before = BeliefEstimator::new(5);
    let mut after = BeliefEstimator::new(5);
    after.decrease_reliability(1);
    for u in 0..5 {
        let (lo, hi) = before.interval_bounds(u);
        let bracket = if u == 4 { "]" } else { ")" };
        table.push_row(vec![
            (u + 1).to_string(),
            format!("[{lo:.1}, {hi:.1}{bracket}"),
            format!("{:.2}", before.belief(u)),
            format!("{:.2}", after.belief(u)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers_exactly() {
        let t = run();
        let csv = t.to_csv();
        // Case (b) of the paper's Table 1.
        for expected in ["0.04", "0.12", "0.20", "0.28", "0.36"] {
            assert!(csv.contains(expected), "missing {expected} in:\n{csv}");
        }
        // Case (a): uniform 0.2.
        assert!(csv.matches("0.20").count() >= 5);
        assert!(csv.contains("[0.8, 1.0]"));
    }
}

//! Minimal scoped-thread work distribution for independent experiment
//! points (no extra dependencies).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, distributing work over `threads` OS
/// threads, and returns results in input order.
///
/// Work is claimed in chunks — one atomic `fetch_add` per chunk rather
/// than per item — so large sweeps (10k-point figure grids) do not
/// serialize on a single contended cache line. The chunk size targets
/// ~8 chunks per worker: small enough to balance uneven point costs,
/// large enough that claim traffic is negligible.
///
/// Each item is processed exactly once; panics in `f` propagate.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let chunk = (items.len() / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(item)));
                    }
                }
                local
            }));
        }
        for handle in handles {
            let local = handle.join().expect("worker panicked");
            let mut guard = slots_ptr.lock().expect("poisoned");
            for (i, r) in local {
                guard[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_thread() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        let one = vec![7u32];
        assert_eq!(parallel_map(&one, 1, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), items);
    }

    #[test]
    fn chunked_claiming_covers_every_item_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Sizes chosen to exercise ragged final chunks for several
        // thread counts.
        for n in [1usize, 7, 64, 97, 1000] {
            for threads in [1usize, 2, 3, 8] {
                let calls = AtomicUsize::new(0);
                let items: Vec<usize> = (0..n).collect();
                let out = parallel_map(&items, threads, |&x| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    x + 1
                });
                assert_eq!(out, (1..=n).collect::<Vec<_>>(), "n={n} threads={threads}");
                assert_eq!(calls.load(Ordering::Relaxed), n);
            }
        }
    }
}

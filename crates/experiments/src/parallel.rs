//! Minimal scoped-thread work distribution for independent experiment
//! points (no extra dependencies).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, distributing work over `threads` OS
/// threads, and returns results in input order.
///
/// Each item is processed exactly once; panics in `f` propagate.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots_ptr = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for handle in handles {
            let local = handle.join().expect("worker panicked");
            let mut guard = slots_ptr.lock().expect("poisoned");
            for (i, r) in local {
                guard[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_thread() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        let one = vec![7u32];
        assert_eq!(parallel_map(&one, 1, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), items);
    }
}

//! The `scenario` surface of the `repro` binary: a partition-then-heal
//! script, built once with the [`Scenario`] API and executed on *both*
//! substrates — the deterministic simulation kernel and the
//! multi-threaded in-memory fabric.
//!
//! This is the general scenario engine the figure harnesses are now
//! instances of: topology × configuration × crash model × workload ×
//! fault script, assembled once, run anywhere.

use std::time::Duration;

use diffuse_core::scenario::{FaultAction, FaultScript, Scenario, Workload};
use diffuse_core::{AdaptiveBroadcast, AdaptiveParams, Payload, ReferenceGossip};
use diffuse_graph::generators;
use diffuse_model::{LinkId, Probability, ProcessId};
use diffuse_net::{run_scenario_on_fabric, run_scenario_on_fabric_virtual, FabricScenarioOptions};
use diffuse_sim::SimTime;

use crate::harness::neighbor_map;
use crate::table::{fmt, Table};
use crate::Effort;

/// The partition-then-heal scenario: a 12-process ring with chords is
/// split into two islands at `cut_at`, healed at `heal_at`, and probed
/// with broadcasts before, during, and after.
pub fn partition_heal_scenario(cut_at: u64, heal_at: u64, horizon: u64) -> Scenario {
    let mut topology = generators::ring(12).expect("ring(12)");
    topology
        .add_link(ProcessId::new(2), ProcessId::new(9))
        .expect("chord");
    topology
        .add_link(ProcessId::new(3), ProcessId::new(8))
        .expect("chord");
    let island: Vec<ProcessId> = (0..6).map(ProcessId::new).collect();
    Scenario::builder(topology)
        .uniform_loss(Probability::new(0.01).expect("valid"))
        .seed(0x5CEA)
        .workload(
            Workload::new()
                .broadcast(
                    SimTime::new(cut_at / 2),
                    ProcessId::new(0),
                    Payload::from("pre-cut"),
                )
                .broadcast(
                    SimTime::new((heal_at + horizon) / 2),
                    ProcessId::new(0),
                    Payload::from("post-heal"),
                ),
        )
        .faults(
            FaultScript::new()
                .at(SimTime::new(cut_at), FaultAction::Partition { island })
                .at(SimTime::new(heal_at), FaultAction::Heal),
        )
        .build()
}

/// Runs the partition-then-heal scenario on the kernel with adaptive
/// nodes, reporting the cut-link estimate trajectory, then replays the
/// same scenario (gossip workload) on the fabric. Returns the
/// trajectory table and a substrate-comparison table.
pub fn run(effort: &Effort) -> Vec<Table> {
    let (cut_at, heal_at, horizon) = if effort.quick {
        (150, 450, 900)
    } else {
        (300, 900, 1800)
    };
    let scenario = partition_heal_scenario(cut_at, heal_at, horizon);
    let neighbors = neighbor_map(&scenario.topology);
    let all: Vec<ProcessId> = scenario.topology.processes().collect();

    // Substrate 1: the deterministic kernel, adaptive protocol. Watch
    // p0's direct link across the cut: ring neighbors 11—0 straddle the
    // island boundary, so its estimate should spike while partitioned
    // and recover after the heal.
    let watched = LinkId::new(ProcessId::new(0), ProcessId::new(11)).expect("ring link");
    let mut run = scenario.sim(|id| {
        AdaptiveBroadcast::new(
            id,
            all.clone(),
            neighbors[&id].clone(),
            AdaptiveParams::default(),
        )
    });
    let mut trajectory = Table::new(
        format!(
            "Scenario: partition at t{cut_at}, heal at t{heal_at} — \
             p0's loss estimate of the cut link {watched}"
        ),
        &["tick", "estimate", "phase"],
    );
    let checkpoints = 9u64;
    for i in 1..=checkpoints {
        let t = horizon * i / checkpoints;
        run.run_ticks(t - run.sim().now().ticks());
        let estimate = run
            .sim()
            .node(ProcessId::new(0))
            .unwrap()
            .protocol()
            .estimated_loss(watched)
            .unwrap()
            .value();
        let phase = if t < cut_at {
            "healthy"
        } else if t < heal_at {
            "partitioned"
        } else {
            "healed"
        };
        trajectory.push_row(vec![t.to_string(), fmt(estimate), phase.to_string()]);
    }

    // Substrate 2: the same scenario value on the fabric of real
    // threads, with the gossip protocol (broadcast-only workload) — run
    // against a kernel reference in both of the fabric's timing modes.
    // Under virtual time the fabric report must be *bit-identical* to
    // the kernel's; under the wall clock it is only statistically
    // comparable (different RNG stream, real scheduling).
    let steps = 8;
    let gossip_reference = scenario.run_sim(horizon, |id| {
        ReferenceGossip::new(id, neighbors[&id].clone(), steps)
    });
    let fabric_virtual = run_scenario_on_fabric_virtual(&scenario, horizon, |id| {
        ReferenceGossip::new(id, neighbors[&id].clone(), steps)
    });
    let fabric_wall = run_scenario_on_fabric(
        &scenario,
        FabricScenarioOptions {
            tick_interval: Duration::from_millis(1),
            run_ticks: horizon,
            settle: Duration::from_millis(40),
        },
        |id| ReferenceGossip::new(id, neighbors[&id].clone(), steps),
    );

    let mut comparison = Table::new(
        "Same scenario (gossip), three executions — deliveries per process".to_string(),
        &[
            "substrate",
            "min",
            "max",
            "failed broadcasts",
            "skipped faults",
            "vs kernel",
        ],
    );
    let rows = [
        ("sim kernel", &gossip_reference, "reference"),
        (
            "fabric (virtual time)",
            &fabric_virtual,
            if fabric_virtual == gossip_reference {
                "bit-identical"
            } else {
                "MISMATCH"
            },
        ),
        ("fabric (wall clock)", &fabric_wall, "statistical"),
    ];
    for (label, report, agreement) in rows {
        comparison.push_row(vec![
            label.to_string(),
            report.min_delivered().to_string(),
            report
                .delivered
                .values()
                .max()
                .copied()
                .unwrap_or(0)
                .to_string(),
            report.failed_broadcasts.to_string(),
            report.skipped_faults.to_string(),
            agreement.to_string(),
        ]);
    }
    vec![trajectory, comparison]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_heal_tables_have_expected_shape() {
        let effort = Effort::quick();
        let tables = run(&effort);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 9);
        assert_eq!(tables[1].row_count(), 3);
        let text = tables[0].to_aligned();
        assert!(text.contains("partitioned"));
        assert!(text.contains("healed"));
        // The virtual-time fabric row must report exact agreement with
        // the kernel — anything else is a conformance regression.
        let comparison = tables[1].to_aligned();
        assert!(comparison.contains("bit-identical"), "{comparison}");
        assert!(!comparison.contains("MISMATCH"), "{comparison}");
    }
}

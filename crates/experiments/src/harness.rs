//! Shared simulation harness: gossip trials, step calibration, and
//! adaptive-convergence runs.
//!
//! Since PR 3 every run goes through the [`Scenario`] layer: a trial is
//! a scenario (topology × configuration × crash model × scripted
//! workload) instantiated on the simulation kernel, which fast-forwards
//! over idle stretches whenever the crash model allows it. The same
//! scenario values run unchanged on `diffuse-net`'s fabric
//! (`run_scenario_on_fabric`).

use std::collections::BTreeMap;

use diffuse_core::scenario::{Scenario, Workload};
use diffuse_core::{AdaptiveBroadcast, AdaptiveParams, Payload, ReferenceGossip};
use diffuse_model::{Configuration, LinkId, Probability, ProcessId, Topology};
use diffuse_sim::{CrashModel, SimTime};

/// Neighbor lists for every process, in id order.
pub fn neighbor_map(topology: &Topology) -> BTreeMap<ProcessId, Vec<ProcessId>> {
    topology
        .processes()
        .map(|p| (p, topology.neighbors(p).collect()))
        .collect()
}

fn crash_model(crash: Probability) -> CrashModel {
    if crash.is_zero() {
        CrashModel::AlwaysUp
    } else {
        CrashModel::Bernoulli { p: crash }
    }
}

/// Outcome of one reference-gossip broadcast trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipTrial {
    /// Did every process deliver the broadcast?
    pub all_reached: bool,
    /// Data copies pushed to the network.
    pub data_messages: u64,
    /// Acknowledgements pushed to the network.
    pub ack_messages: u64,
}

/// Gossip forwarding rounds happen every other tick so that data and its
/// acknowledgements (one tick of latency each way) land *between* rounds,
/// matching the paper's notion of a step (forward, receive, acknowledge).
pub const GOSSIP_STEP_PERIOD: u64 = 2;

/// Runs one reference-gossip broadcast over `topology` with uniform loss
/// and crash probabilities and a global step budget of `steps`.
pub fn gossip_trial(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    steps: u32,
    seed: u64,
) -> GossipTrial {
    let loss_cfg = Configuration::uniform(topology, Probability::ZERO, loss);
    gossip_trial_config(topology, loss_cfg, crash, steps, seed)
}

/// Runs one reference-gossip broadcast with an arbitrary (possibly
/// heterogeneous) per-link loss configuration. Takes the configuration
/// by value: the simulation consumes it, so borrowing would force an
/// extra clone on every Monte-Carlo trial.
pub fn gossip_trial_config(
    topology: &Topology,
    loss_cfg: Configuration,
    crash: Probability,
    steps: u32,
    seed: u64,
) -> GossipTrial {
    let neighbors = neighbor_map(topology);
    let origin = topology.processes().next().expect("non-empty topology");
    let scenario = Scenario::builder(topology.clone())
        .config(loss_cfg)
        .crash_model(crash_model(crash))
        .seed(seed)
        .workload(Workload::new().broadcast(SimTime::ZERO, origin, Payload::from("trial")))
        .build();
    let mut run = scenario.sim(|id| {
        ReferenceGossip::new(id, neighbors[&id].clone(), steps).with_step_period(GOSSIP_STEP_PERIOD)
    });
    run.run_ticks(GOSSIP_STEP_PERIOD * (steps as u64 + 2) + 3);
    assert_eq!(run.failed_broadcasts(), 0, "origin starts up");

    let report = run.report();
    let all_reached = report.all_delivered_at_least(1);
    let metrics = report.metrics.expect("kernel runs carry metrics");
    GossipTrial {
        all_reached,
        data_messages: metrics.sent_of_kind("data"),
        ack_messages: metrics.sent_of_kind("ack"),
    }
}

/// Settings for the sequential, confidence-bounded step calibration.
///
/// The calibration runs a *curtailed sequential test* per candidate
/// budget: trials run one at a time, the budget is rejected on the first
/// failed trial (no point finishing the batch — the paper's criterion is
/// "all processes reached"), and accepted after
/// [`CalibrationSettings::required_successes`] consecutive successes.
/// If the true delivery probability of a budget were below `target`, the
/// chance of it surviving `n` successes is at most `target^n ≤ alpha` —
/// a one-sided confidence bound, replacing the earlier fixed-run count
/// that certified an unstated (and budget-dependent) level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSettings {
    /// Delivery probability the accepted budget must certify.
    pub target: f64,
    /// Acceptable probability of accepting a budget whose true delivery
    /// probability is below `target` (the test's one-sided α).
    pub alpha: f64,
    /// Give up beyond this step budget.
    pub max_steps: u32,
}

impl CalibrationSettings {
    /// Certify `target` at one-sided confidence `1 - alpha`.
    pub fn certifying(target: f64, alpha: f64, max_steps: u32) -> Self {
        CalibrationSettings {
            target: target.clamp(0.5, 1.0 - 1e-9),
            alpha: alpha.clamp(1e-9, 0.5),
            max_steps,
        }
    }

    /// Calibration effort comparable to `runs` all-success trials: the
    /// rule-of-three level those runs certify at 95% confidence
    /// (`1 - 3/runs`), so sweeps keep their cost when switching from the
    /// fixed-run calibration to the confidence-bounded one.
    pub fn comparable_to_runs(runs: u32, max_steps: u32) -> Self {
        CalibrationSettings::certifying(1.0 - 3.0 / runs.max(4) as f64, 0.05, max_steps)
    }

    /// Consecutive successful trials needed to accept a budget:
    /// `⌈ln alpha / ln target⌉`.
    pub fn required_successes(&self) -> u32 {
        (self.alpha.ln() / self.target.ln()).ceil().max(1.0) as u32
    }
}

/// Finds the smallest global step budget for which `runs` consecutive
/// Monte-Carlo trials all reach every process — the experiment harness's
/// replacement for the step counts the paper "determined interactively".
///
/// With `runs` successful trials and zero failures, the delivery
/// probability is at least roughly `1 - 3/runs` at 95% confidence; the
/// run count therefore bounds how sharply the paper's `K = 0.9999` can be
/// certified (documented in EXPERIMENTS.md). Prefer
/// [`calibrate_gossip_steps_confident`], which makes that bound an
/// explicit input.
///
/// Returns `None` if even `max_steps` fails.
pub fn calibrate_gossip_steps(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    runs: u32,
    max_steps: u32,
    seed: u64,
) -> Option<u32> {
    let loss_cfg = Configuration::uniform(topology, Probability::ZERO, loss);
    calibrate_gossip_steps_config(topology, &loss_cfg, crash, runs, max_steps, seed)
}

/// [`calibrate_gossip_steps`] over an arbitrary per-link loss
/// configuration.
pub fn calibrate_gossip_steps_config(
    topology: &Topology,
    config: &Configuration,
    crash: Probability,
    runs: u32,
    max_steps: u32,
    seed: u64,
) -> Option<u32> {
    calibrate_runs(topology, config, crash, runs, max_steps, seed)
}

/// Sequential confidence-bounded calibration (see
/// [`CalibrationSettings`]): finds the smallest step budget certified to
/// deliver with probability ≥ `settings.target` at one-sided confidence
/// `1 - settings.alpha`, or `None` if even `settings.max_steps` fails the
/// test. Used by the Figure 4 harness for both panels.
pub fn calibrate_gossip_steps_confident(
    topology: &Topology,
    config: &Configuration,
    crash: Probability,
    settings: CalibrationSettings,
    seed: u64,
) -> Option<u32> {
    calibrate_runs(
        topology,
        config,
        crash,
        settings.required_successes(),
        settings.max_steps,
        seed,
    )
}

/// Shared search: smallest budget surviving `runs` consecutive trials
/// (each candidate's test is curtailed on its first failure by `.all()`'s
/// short-circuit), found by exponential probe + binary search.
fn calibrate_runs(
    topology: &Topology,
    config: &Configuration,
    crash: Probability,
    runs: u32,
    max_steps: u32,
    seed: u64,
) -> Option<u32> {
    let all_ok = |steps: u32| -> bool {
        (0..runs).all(|r| {
            gossip_trial_config(
                topology,
                config.clone(),
                crash,
                steps,
                seed ^ (0x9E37 + r as u64),
            )
            .all_reached
        })
    };
    // Exponential probe, then binary search on the failing/succeeding
    // bracket.
    let mut hi = 1u32;
    while !all_ok(hi) {
        if hi >= max_steps {
            return None;
        }
        hi = (hi * 2).min(max_steps);
    }
    let mut lo = hi / 2; // fails (or zero)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if all_ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Mean data/ack message counts of the reference algorithm over `runs`
/// trials at a fixed step budget.
pub fn gossip_mean_messages(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    steps: u32,
    runs: u32,
    seed: u64,
) -> (f64, f64) {
    let (data, acks) = gossip_message_stats(topology, loss, crash, steps, runs, seed);
    (data.mean, acks.mean)
}

/// Full summary statistics (mean, deviation, 95% CI) of the reference
/// algorithm's data and ack message counts over `runs` trials.
pub fn gossip_message_stats(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    steps: u32,
    runs: u32,
    seed: u64,
) -> (crate::Summary, crate::Summary) {
    let loss_cfg = Configuration::uniform(topology, Probability::ZERO, loss);
    gossip_message_stats_config(topology, &loss_cfg, crash, steps, runs, seed)
}

/// [`gossip_message_stats`] over an arbitrary per-link loss configuration.
pub fn gossip_message_stats_config(
    topology: &Topology,
    config: &Configuration,
    crash: Probability,
    steps: u32,
    runs: u32,
    seed: u64,
) -> (crate::Summary, crate::Summary) {
    let mut data = Vec::with_capacity(runs as usize);
    let mut acks = Vec::with_capacity(runs as usize);
    for r in 0..runs {
        let t = gossip_trial_config(
            topology,
            config.clone(),
            crash,
            steps,
            seed ^ (0xBEEF + r as u64),
        );
        data.push(t.data_messages as f64);
        acks.push(t.ack_messages as f64);
    }
    (crate::Summary::of(&data), crate::Summary::of(&acks))
}

/// Outcome of one adaptive-convergence run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceOutcome {
    /// Tick at which every process's every estimate was within tolerance,
    /// or `None` if the cap was hit first.
    pub converged_at: Option<u64>,
    /// Heartbeat messages sent up to that point.
    pub heartbeat_messages: u64,
    /// Heartbeats per link — the paper's Figure 5/6 metric ("twice the
    /// number of heartbeat messages sent by a process through a link").
    pub messages_per_link: f64,
}

/// Runs the adaptive protocol's approximation activity until every
/// process has learned every crash and loss probability to within
/// `tolerance`, and reports the effort in messages per link.
#[allow(clippy::too_many_arguments)]
pub fn convergence_run(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    params: &AdaptiveParams,
    tolerance: f64,
    max_ticks: u64,
    check_every: u64,
    seed: u64,
) -> ConvergenceOutcome {
    let neighbors = neighbor_map(topology);
    let all: Vec<ProcessId> = topology.processes().collect();
    let links: Vec<LinkId> = topology.links().collect();

    let scenario = Scenario::builder(topology.clone())
        .uniform_loss(loss)
        .crash_model(crash_model(crash))
        .seed(seed)
        .build();
    let mut run = scenario
        .sim(|id| AdaptiveBroadcast::new(id, all.clone(), neighbors[&id].clone(), params.clone()));

    // Convergence is only *checked* every `check_every` ticks; with a
    // failure-free crash model the kernel additionally fast-forwards
    // through ticks on which no heartbeat or suspicion deadline is due.
    let target_crash = crash.value();
    let target_loss = loss.value();
    let converged_at = run.run_until_every(
        |sim| {
            sim.nodes().all(|(_, actor)| {
                let node = actor.protocol();
                all.iter().all(|&p| {
                    node.estimated_crash(p)
                        .is_some_and(|e| (e.value() - target_crash).abs() <= tolerance)
                }) && links.iter().all(|&l| {
                    node.estimated_loss(l)
                        .is_some_and(|e| (e.value() - target_loss).abs() <= tolerance)
                })
            })
        },
        check_every.max(1),
        max_ticks,
    );

    let metrics = run.sim().metrics();
    ConvergenceOutcome {
        converged_at: converged_at.map(|t| t.ticks()),
        heartbeat_messages: metrics.sent_of_kind("heartbeat"),
        messages_per_link: metrics.messages_per_link_of_kind("heartbeat", topology.link_count()),
    }
}

/// The deterministic message cost of the converged adaptive algorithm
/// (equal to the optimal algorithm's, by Definition 2): the total of the
/// optimize() plan over the exact-knowledge MRT.
pub fn adaptive_broadcast_cost(
    topology: &Topology,
    loss: Probability,
    crash: Probability,
    k: f64,
) -> Result<u64, diffuse_core::CoreError> {
    let config = Configuration::uniform(topology, crash, loss);
    let knowledge = diffuse_core::NetworkKnowledge::exact(topology.clone(), config);
    let origin = topology.processes().next().expect("non-empty topology");
    let (_, plan) = knowledge.broadcast_plan(origin, k)?;
    Ok(plan.total_messages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse_graph::generators;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn gossip_trial_reaches_everyone_on_reliable_ring() {
        let ring = generators::ring(10).unwrap();
        let t = gossip_trial(&ring, Probability::ZERO, Probability::ZERO, 8, 1);
        assert!(t.all_reached);
        assert!(t.data_messages >= 10);
        assert!(t.ack_messages > 0);
    }

    #[test]
    fn gossip_trial_fails_with_tiny_budget() {
        let ring = generators::ring(12).unwrap();
        // A ring needs ~n/2 steps; one step cannot reach everyone.
        let t = gossip_trial(&ring, Probability::ZERO, Probability::ZERO, 1, 1);
        assert!(!t.all_reached);
    }

    #[test]
    fn required_successes_implements_the_confidence_bound() {
        // ln(0.05)/ln(0.9) ≈ 28.4 → 29 consecutive successes.
        let s = CalibrationSettings::certifying(0.9, 0.05, 64);
        assert_eq!(s.required_successes(), 29);
        // The bound holds: target^n ≤ alpha.
        // lint:allow(det-pow): test assertion on the closed-form calibration bound.
        assert!(s.target.powi(s.required_successes() as i32) <= s.alpha);
        // Comparable-to-runs reproduces the rule-of-three effort scale:
        // n ≈ runs (ln(0.05)/ln(1 - 3/runs) ≈ runs for large runs).
        let c = CalibrationSettings::comparable_to_runs(40, 64);
        let n = c.required_successes();
        assert!((30..=50).contains(&n), "n = {n}");
    }

    #[test]
    fn confident_calibration_finds_a_minimal_certified_budget() {
        let ring = generators::ring(8).unwrap();
        let cfg = Configuration::uniform(&ring, Probability::ZERO, Probability::ZERO);
        let settings = CalibrationSettings::certifying(0.9, 0.05, 64);
        let steps =
            calibrate_gossip_steps_confident(&ring, &cfg, Probability::ZERO, settings, 42).unwrap();
        // Reliable ring of 8: flood reaches everyone in ~4 steps.
        assert!((3..=6).contains(&steps), "steps = {steps}");
        // One step fewer must fail at least one trial.
        let t = gossip_trial(&ring, Probability::ZERO, Probability::ZERO, steps - 1, 77);
        assert!(!t.all_reached);
        // A hopeless configuration is rejected.
        let dead = Configuration::uniform(&ring, Probability::ZERO, Probability::ONE);
        assert_eq!(
            calibrate_gossip_steps_confident(&ring, &dead, Probability::ZERO, settings, 1),
            None
        );
    }

    #[test]
    fn calibration_finds_a_minimal_budget() {
        let ring = generators::ring(8).unwrap();
        let steps =
            calibrate_gossip_steps(&ring, Probability::ZERO, Probability::ZERO, 5, 64, 42).unwrap();
        // Reliable ring of 8: flood reaches everyone in ~4 steps.
        assert!((3..=6).contains(&steps), "steps = {steps}");
        // One step fewer must fail.
        let t = gossip_trial(&ring, Probability::ZERO, Probability::ZERO, steps - 1, 77);
        assert!(!t.all_reached);
    }

    #[test]
    fn calibration_gives_up_when_capped() {
        let ring = generators::ring(8).unwrap();
        // Certain loss: no budget suffices.
        let out = calibrate_gossip_steps(&ring, Probability::ONE, Probability::ZERO, 3, 16, 1);
        assert_eq!(out, None);
    }

    #[test]
    fn convergence_run_converges_on_a_small_reliable_ring() {
        let ring = generators::ring(6).unwrap();
        let out = convergence_run(
            &ring,
            Probability::ZERO,
            Probability::ZERO,
            &AdaptiveParams::default(),
            0.02,
            2000,
            5,
            7,
        );
        assert!(out.converged_at.is_some(), "{out:?}");
        assert!(out.messages_per_link > 0.0);
        assert!(out.heartbeat_messages > 0);
    }

    #[test]
    fn convergence_detects_lossy_links() {
        let ring = generators::ring(6).unwrap();
        let out = convergence_run(
            &ring,
            p(0.05),
            Probability::ZERO,
            &AdaptiveParams::default(),
            0.03,
            4000,
            10,
            3,
        );
        assert!(out.converged_at.is_some(), "{out:?}");
    }

    #[test]
    fn adaptive_cost_grows_with_loss() {
        let ring = generators::ring(10).unwrap();
        let cheap = adaptive_broadcast_cost(&ring, p(0.01), Probability::ZERO, 0.9999).unwrap();
        let pricey = adaptive_broadcast_cost(&ring, p(0.07), Probability::ZERO, 0.9999).unwrap();
        assert!(pricey > cheap);
        assert!(cheap >= 9); // at least one message per link
    }
}

//! Plain-text result tables (aligned console output + CSV).

/// A result table for one experiment: a title, column headers and string
/// rows, printable as aligned text or CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
    }

    /// Renders as an aligned plain-text table.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (headers included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with sensible experiment precision.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output_contains_everything() {
        let mut t = Table::new("Demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10".into()]);
        t.push_row(vec!["2".into(), "20".into()]);
        let s = t.to_aligned();
        assert!(s.contains("## Demo"));
        assert!(s.contains("value"));
        assert!(s.contains("20"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_output_is_parseable() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_is_rejected() {
        let mut t = Table::new("Demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(3.16227), "3.16");
        assert_eq!(fmt(1234.5), "1234");
    }
}

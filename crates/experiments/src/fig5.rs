//! Figure 5: convergence effort (heartbeat messages per link) as a
//! function of network connectivity.
//!
//! Every process runs the adaptive protocol's approximation activity on a
//! circulant topology of 100 processes; the run stops once *every*
//! process has learned *every* crash and loss probability to within the
//! configured tolerance (the paper's "all processes learn the reliability
//! probabilities"). The reported metric is heartbeats per link, i.e.
//! twice the heartbeats a process sends through each link (`2 · T/δ`).

use diffuse_core::AdaptiveParams;
use diffuse_graph::generators;

use crate::fig4::{Panel, SYSTEM_SIZE};
use crate::harness::{convergence_run, ConvergenceOutcome};
use crate::parallel::parallel_map;
use crate::table::{fmt, Table};
use crate::Effort;

/// The failure-probability series of each panel (Figure 5 includes the
/// failure-free baseline).
pub const FIG5_SERIES: [f64; 4] = [0.0, 0.01, 0.03, 0.05];

/// Measures one convergence point.
pub fn measure_point(
    connectivity: u32,
    probability: f64,
    panel: Panel,
    effort: &Effort,
) -> ConvergenceOutcome {
    let topology = generators::circulant(SYSTEM_SIZE, connectivity)
        .expect("connectivity sweep is realizable for n = 100");
    let (crash, loss) = match panel {
        Panel::CrashSweep => (
            diffuse_model::Probability::new(probability).expect("valid"),
            diffuse_model::Probability::ZERO,
        ),
        Panel::LossSweep => (
            diffuse_model::Probability::ZERO,
            diffuse_model::Probability::new(probability).expect("valid"),
        ),
    };
    let seed = effort.seed ^ ((connectivity as u64) << 24) ^ (probability * 1e4) as u64;
    convergence_run(
        &topology,
        loss,
        crash,
        &AdaptiveParams::default(),
        effort.tolerance,
        effort.max_ticks,
        effort.check_every,
        seed,
    )
}

/// Regenerates one panel of Figure 5.
pub fn run(panel: Panel, effort: &Effort) -> Table {
    let points: Vec<(u32, f64)> = effort
        .connectivities
        .iter()
        .flat_map(|&c| FIG5_SERIES.iter().map(move |&p| (c, p)))
        .collect();
    let measured = parallel_map(&points, effort.threads, |&(c, p)| {
        (c, p, measure_point(c, p, panel, effort))
    });

    let (label, suffix) = match panel {
        Panel::CrashSweep => ("P", "(a) reliable links"),
        Panel::LossSweep => ("L", "(b) reliable processes"),
    };
    let columns: Vec<String> = std::iter::once("connectivity".to_string())
        .chain(FIG5_SERIES.iter().map(|p| format!("{label}={p}")))
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Figure 5{suffix} — convergence effort, heartbeat messages per link"),
        &column_refs,
    );
    for &c in &effort.connectivities {
        let mut row = vec![c.to_string()];
        for &p in &FIG5_SERIES {
            let outcome = measured
                .iter()
                .find(|(mc, mp, _)| *mc == c && *mp == p)
                .map(|(_, _, o)| o)
                .expect("all points measured");
            let cell = if outcome.converged_at.is_some() {
                fmt(outcome.messages_per_link)
            } else {
                format!(">{}", fmt(outcome.messages_per_link))
            };
            row.push(cell);
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-second 100-process Monte-Carlo; CI runs it in release via --ignored"]
    fn failure_free_point_converges_quickly() {
        let effort = Effort {
            max_ticks: 1500,
            tolerance: 0.02,
            ..Effort::quick()
        };
        let out = measure_point(4, 0.0, Panel::LossSweep, &effort);
        assert!(out.converged_at.is_some(), "{out:?}");
        // δ = 1 → messages/link = 2 · ticks.
        let t = out.converged_at.unwrap() as f64;
        assert!((out.messages_per_link - 2.0 * t).abs() / (2.0 * t) < 0.2);
    }

    #[test]
    #[ignore = "multi-second 100-process Monte-Carlo; CI runs it in release via --ignored"]
    fn lossy_links_take_longer_than_reliable_ones() {
        let effort = Effort {
            max_ticks: 3000,
            tolerance: 0.02,
            ..Effort::quick()
        };
        let clean = measure_point(4, 0.0, Panel::LossSweep, &effort);
        let lossy = measure_point(4, 0.05, Panel::LossSweep, &effort);
        let (c, l) = (
            clean.converged_at.unwrap_or(effort.max_ticks),
            lossy.converged_at.unwrap_or(effort.max_ticks),
        );
        assert!(l > c, "lossy {l} ticks vs clean {c} ticks");
    }
}

//! Evaluation harness for `diffuse`: regenerates every table and figure
//! of the paper (Section 5 plus Table 1 and Figure 1) and two extension
//! experiments from its future-work list.
//!
//! | Experiment | Module | Paper artifact |
//! |---|---|---|
//! | `fig1` | [`fig1`] | Figure 1 — two-path closed form |
//! | `table1` | [`table1`] | Table 1 — Bayesian belief update |
//! | `fig4a`/`fig4b` | [`fig4`] | Figure 4 — reference/optimal ratio |
//! | `fig5a`/`fig5b` | [`fig5`] | Figure 5 — convergence effort |
//! | `fig6` | [`fig6`] | Figure 6 — scalability (ring vs tree) |
//! | `hetero` | [`hetero`] | §7 future work — heterogeneous losses |
//! | `refine` | [`refine`] | §7 future work — interval refinement |
//! | `scenario` | [`scenarios`] | partition-then-heal script on both substrates |
//! | `scale` | [`scale`] | thousand-node rounds, delta vs full heartbeats |
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run -p diffuse-experiments --release --bin repro -- all --quick
//! cargo run -p diffuse-experiments --release --bin repro -- fig4b
//! cargo run -p diffuse-experiments --release --bin repro -- fig5a --csv
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod effort;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
mod harness;
pub mod hetero;
mod parallel;
pub mod refine;
pub mod scale;
pub mod scenarios;
mod stats;
mod table;
pub mod table1;

pub use effort::Effort;
pub use harness::{
    adaptive_broadcast_cost, calibrate_gossip_steps, calibrate_gossip_steps_confident,
    calibrate_gossip_steps_config, convergence_run, gossip_mean_messages, gossip_message_stats,
    gossip_message_stats_config, gossip_trial, gossip_trial_config, neighbor_map,
    CalibrationSettings, ConvergenceOutcome, GossipTrial, GOSSIP_STEP_PERIOD,
};
pub use parallel::parallel_map;
pub use stats::{rule_of_three_lower_bound, Summary};
pub use table::{fmt, Table};

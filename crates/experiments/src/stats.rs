//! Small summary-statistics helpers for Monte-Carlo measurements.

/// Summary of a sample: count, mean, standard deviation and a normal
/// 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// Empty samples yield all-zero summaries; single-element samples
    /// have zero deviation.
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let std_dev = if count < 2 {
            0.0
        } else {
            // lint:allow(det-pow): sample variance for experiment report tables; display-only statistics, never a broadcast plan input.
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0);
            var.sqrt()
        };
        let ci95 = if count < 2 {
            0.0
        } else {
            1.96 * std_dev / (count as f64).sqrt()
        };
        Summary {
            count,
            mean,
            std_dev,
            ci95,
        }
    }

    /// The confidence interval as `(low, high)`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }
}

/// Lower bound (95% confidence, rule-of-three style) on a success
/// probability after observing `successes` out of `trials` with zero
/// failures tolerated: `1 - 3/n` when all trials succeed.
///
/// Used to interpret gossip calibration: with `n` all-success runs the
/// certified delivery probability is only about `1 - 3/n`, which bounds
/// how sharply the paper's `K = 0.9999` can be checked by simulation.
pub fn rule_of_three_lower_bound(trials: u32) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    (1.0 - 3.0 / trials as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected stddev of this classic sample is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
        let (lo, hi) = s.interval();
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    fn degenerate_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95, 0.0);
    }

    #[test]
    fn rule_of_three_bounds() {
        assert_eq!(rule_of_three_lower_bound(0), 0.0);
        assert_eq!(rule_of_three_lower_bound(1), 0.0);
        assert!((rule_of_three_lower_bound(300) - 0.99).abs() < 1e-12);
        assert!((rule_of_three_lower_bound(30_000) - 0.9999).abs() < 1e-12);
    }
}

//! The `scale` sweep: thousand-node heartbeat rounds, delta vs full
//! views.
//!
//! The Hu & Jehl–scale measurement PAPERS.md calls for: how expensive is
//! one steady-state round of the adaptive protocol's approximation
//! activity as the system grows to n ∈ {100, 300, 1000}, and how much of
//! that the delta-heartbeat machinery removes. Two regimes are swept:
//!
//! * **converged** — paper-literal reconciliation with on-reconcile
//!   blame (a received heartbeat is not itself Bayesian evidence) and
//!   sparse self-monitoring: after the initial transient the knowledge
//!   views are stable and deltas shrink to the self-tick wave. This is
//!   the regime where per-heartbeat cost drops from
//!   O(processes + links) to O(changes).
//! * **evidence** (the repo default, SeqGap reconcile) — every heartbeat
//!   is fresh evidence, so essentially every view entry changes every
//!   round and deltas are dense; the sweep shows the delta machinery
//!   holding its own rather than winning.
//!
//! Each row reports wall-clock µs per round (all nodes: emissions,
//! suspicion scans, self ticks, merges) and the average heartbeat
//! payload in KB (the [`View::wire_size`]/[`DeltaView::wire_size`]
//! accounting; the paper reports ~50 KB full heartbeats at n = 100,
//! U = 100).
//!
//! [`View::wire_size`]: diffuse_core::View::wire_size
//! [`DeltaView::wire_size`]: diffuse_core::DeltaView::wire_size

use std::time::Instant;

use diffuse_core::scenario::{Scenario, ScenarioReport, Workload};
use diffuse_core::{
    Actions, AdaptiveBroadcast, AdaptiveParams, Event, HeartbeatView, LinkBlame, Message, Payload,
    Protocol, ReconcileMode, ReferenceGossip, ViewMode,
};
use diffuse_graph::generators;
use diffuse_model::ProcessId;
use diffuse_sim::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt, Table};
use crate::Effort;

/// One measured configuration.
struct Point {
    n: u32,
    regime: &'static str,
    mode: ViewMode,
    us_per_round: f64,
    heartbeat_kb: f64,
}

/// The converged-regime parameterization (see the module docs): used by
/// the sweep below and by the `heartbeat`/`view` micro benches.
pub fn converged_params() -> AdaptiveParams {
    AdaptiveParams::default()
        .with_reconcile(ReconcileMode::PaperLiteral)
        .with_link_blame(LinkBlame::OnReconcile)
        .with_self_tick_period(50)
}

/// An adaptive system stepped one heartbeat round at a time in the
/// kernel's phase order: the previous tick's messages are delivered
/// *before* timers fire, so suspicion deadlines are always refreshed in
/// time and Event 2 stays quiet in healthy steady state.
///
/// This is the one shared round driver: the scale sweep below and the
/// `heartbeat`/`view` micro benches (crates/bench/benches/micro.rs)
/// both step it, so the phase order cannot silently diverge between
/// them. Process ids must be dense `0..n` (the generator families
/// guarantee it): sends route by index.
#[derive(Debug)]
pub struct KernelOrderSystem {
    /// The nodes, indexed by process id.
    pub nodes: Vec<AdaptiveBroadcast>,
    /// Messages sent this tick, delivered at the start of the next.
    pub pending: Vec<(u32, ProcessId, Message)>,
    actions: Actions,
    tick: u64,
}

impl KernelOrderSystem {
    /// Builds the system over `topology` and warms it through its
    /// transient (`warmup` rounds).
    pub fn warmed(
        topology: &diffuse_model::Topology,
        params: &AdaptiveParams,
        warmup: u64,
    ) -> Self {
        let all: Vec<ProcessId> = topology.processes().collect();
        let mut system = KernelOrderSystem {
            nodes: all
                .iter()
                .map(|&id| {
                    AdaptiveBroadcast::new(
                        id,
                        all.clone(),
                        topology.neighbors(id).collect(),
                        params.clone(),
                    )
                })
                .collect(),
            pending: Vec::new(),
            actions: Actions::new(),
            tick: 0,
        };
        for _ in 0..warmup {
            system.round();
        }
        system
    }

    /// The current tick.
    pub fn now(&self) -> SimTime {
        SimTime::new(self.tick)
    }

    /// Advances the tick and steps one round.
    pub fn round(&mut self) {
        self.round_inspecting(|_, _| {});
    }

    /// Like [`KernelOrderSystem::round`], calling `inspect` for every
    /// message sent this round (e.g. to account heartbeat wire sizes).
    pub fn round_inspecting(&mut self, mut inspect: impl FnMut(ProcessId, &Message)) {
        self.tick += 1;
        let now = SimTime::new(self.tick);
        for (target, from, m) in self.pending.drain(..) {
            self.nodes[target as usize].handle_message(now, from, m, &mut self.actions);
            self.actions.clear();
        }
        for node in self.nodes.iter_mut() {
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::HEARTBEAT),
                &mut self.actions,
            );
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::SUSPICION),
                &mut self.actions,
            );
            node.on_event(
                now,
                Event::Timer(AdaptiveBroadcast::SELF_TICK),
                &mut self.actions,
            );
            let from = node.id();
            for (to, m) in self.actions.take_sends() {
                inspect(to, &m);
                self.pending.push((to.index(), from, m));
            }
            self.actions.clear();
        }
    }
}

/// Runs `rounds` steady-state rounds over a circulant(n, 4) system and
/// returns (µs per round, average heartbeat KB).
#[allow(clippy::disallowed_methods)] // wall throughput is the measurement
fn measure(n: u32, params: &AdaptiveParams, warmup: u64, rounds: u64) -> (f64, f64) {
    let topology = generators::circulant(n, 4).expect("circulant");
    let mut system = KernelOrderSystem::warmed(&topology, params, warmup);
    let mut heartbeat_bytes = 0u64;
    let mut heartbeats = 0u64;
    // lint:allow(no-wall-clock): µs-per-round wall throughput is the quantity this experiment reports.
    let started = Instant::now();
    for _ in 0..rounds {
        system.round_inspecting(|_, m| {
            if let Message::Heartbeat(hb) = m {
                heartbeats += 1;
                heartbeat_bytes += match &hb.view {
                    HeartbeatView::Full(v) => v.wire_size() as u64,
                    HeartbeatView::Delta(d) => d.wire_size() as u64,
                };
            }
        });
    }
    let elapsed = started.elapsed().as_secs_f64();
    let kb = if heartbeats == 0 {
        0.0
    } else {
        heartbeat_bytes as f64 / heartbeats as f64 / 1024.0
    };
    (elapsed * 1e6 / rounds as f64, kb)
}

/// Runs the scale sweep and renders the comparison table.
pub fn run(effort: &Effort) -> Table {
    let sizes: &[u32] = if effort.quick {
        &[30, 100]
    } else {
        &[100, 300, 1000]
    };
    let mut points = Vec::new();
    for &n in sizes {
        // Rounds scale down with n so the sweep stays minutes, not
        // hours; warmup must clear the topology/estimate transient
        // (topology spreads one hop per round — circulant(1000, 4) has
        // diameter 250).
        let (warmup, rounds) = if effort.quick {
            (200, 20)
        } else if n >= 1000 {
            (320, 5)
        } else {
            (300, 40)
        };
        for (regime, base) in [
            ("converged", converged_params()),
            ("evidence", AdaptiveParams::default()),
        ] {
            if regime == "evidence" && n >= 1000 && !effort.quick {
                // The dense-evidence regime walks every entry every
                // round by construction; at n = 1000 that is minutes of
                // warmup per configuration for a number the 100/300
                // points already characterize. The thousand-node rows
                // measure the converged regime — the one the delta
                // machinery exists for.
                continue;
            }
            for mode in [ViewMode::Delta, ViewMode::Full] {
                let params = base.clone().with_heartbeat_views(mode);
                let (us, kb) = measure(n, &params, warmup, rounds);
                points.push(Point {
                    n,
                    regime,
                    mode,
                    us_per_round: us,
                    heartbeat_kb: kb,
                });
            }
        }
    }

    let mut table = Table::new(
        "Scale sweep: one heartbeat round (all nodes), delta vs full views — \
         circulant(n, 4), U = 100"
            .to_string(),
        &[
            "n",
            "regime",
            "views",
            "us/round",
            "heartbeat KB",
            "speedup",
            "wire saving",
        ],
    );
    for pair in points.chunks(2) {
        let [delta, full] = pair else { continue };
        for point in [delta, full] {
            let (speedup, saving) = if point.mode == ViewMode::Delta {
                (
                    format!("{:.1}x", full.us_per_round / delta.us_per_round),
                    format!(
                        "{:.0}x",
                        (full.heartbeat_kb / delta.heartbeat_kb.max(1e-9)).max(1.0)
                    ),
                )
            } else {
                ("1.0x".to_string(), "1x".to_string())
            };
            table.push_row(vec![
                point.n.to_string(),
                point.regime.to_string(),
                match point.mode {
                    ViewMode::Delta => "delta".to_string(),
                    ViewMode::Full => "full".to_string(),
                },
                fmt(point.us_per_round),
                fmt(point.heartbeat_kb),
                speedup,
                saving,
            ]);
        }
    }
    table
}

/// One sharded-sweep measurement.
struct ShardPoint {
    n: u32,
    links: usize,
    workers: usize,
    ms: f64,
    reach: f64,
    speedup: f64,
}

/// Builds the sharded-sweep scenario for `n` nodes: a connected sparse
/// Erdős–Rényi supergraph (`p = 2·ln n / n` keeps the diameter
/// logarithmic, so the flood reaches every shard within a few ticks and
/// no worker sits idle) carrying a handful of staggered broadcasts.
/// Loss-free by construction: no RNG is consumed during the run, so
/// every worker count must produce the identical report.
fn sharded_scenario(n: u32, broadcasts: u32, seed: u64) -> Scenario {
    let p = (2.0 * f64::from(n).ln() / f64::from(n)).min(0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = generators::erdos_renyi_connected_fast(n, p, 50, &mut rng)
        .expect("p = 2 ln n / n is well above the connectivity threshold");
    let mut workload = Workload::new();
    for i in 0..broadcasts {
        workload = workload.broadcast(
            SimTime::new(u64::from(i) * 2),
            ProcessId::new((i.wrapping_mul(5003)) % n),
            Payload::from(format!("scale-{i}").into_bytes()),
        );
    }
    Scenario::builder(topology)
        .seed(seed ^ 0x005C_A1ED)
        .link_delay(1)
        .workload(workload)
        .build()
}

/// Steps every node keeps forwarding a fresh message: comfortably above
/// the supergraph's logarithmic diameter, so the flood completes.
const SHARD_GOSSIP_STEPS: u32 = 8;

/// Runs one sharded sweep and returns (wall-clock ms, the report).
#[allow(clippy::disallowed_methods)] // wall throughput is the measurement
fn measure_sharded(scenario: &Scenario, horizon: u64, workers: usize) -> (f64, ScenarioReport) {
    let topology = &scenario.topology;
    // lint:allow(no-wall-clock): ms-per-sweep wall throughput is the quantity this experiment reports.
    let started = Instant::now();
    let report = scenario.run_sim_sharded(horizon, workers, |id| {
        ReferenceGossip::new(id, topology.neighbors(id).collect(), SHARD_GOSSIP_STEPS)
    });
    (started.elapsed().as_secs_f64() * 1e3, report)
}

/// Runs the sharded-executor sweep: the same gossip flood executed at
/// each worker count in [`Effort::workers`], on sparse random graphs up
/// to 100 000 nodes (`--quick` subsamples to 300/1200).
///
/// The scenarios are loss-free, so no RNG is consumed and every worker
/// count must produce the identical [`ScenarioReport`] — the sweep
/// asserts that equality on every row before timing is reported. The
/// speedup column is relative to the first worker count in the list
/// (the default puts `1` first, i.e. the kernel-equivalent path). On a
/// host without parallel hardware it sits at or below 1.0x: barrier
/// lockstep is pure overhead when the workers time-slice one core.
///
/// # Panics
///
/// Panics if two worker counts disagree on the report — that would be a
/// determinism bug in the sharded executor, not a measurement artifact.
pub fn run_sharded(effort: &Effort) -> Table {
    let sizes: &[u32] = if effort.quick {
        &[300, 1_200]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut points = Vec::new();
    for &n in sizes {
        // Larger graphs carry fewer concurrent broadcasts so the sweep
        // stays seconds per row; the per-broadcast traffic is already
        // O(n·degree) = O(n·ln n).
        let broadcasts = if n >= 100_000 {
            1
        } else if n >= 10_000 {
            2
        } else {
            4
        };
        let scenario = sharded_scenario(n, broadcasts, effort.seed ^ u64::from(n));
        let links = scenario.topology.link_count();
        let horizon = 40;
        let mut baseline: Option<(f64, ScenarioReport)> = None;
        for &workers in &effort.workers {
            let (ms, report) = measure_sharded(&scenario, horizon, workers);
            let reach =
                report.delivered.values().filter(|&&d| d > 0).count() as f64 / f64::from(n.max(1));
            let speedup = match &baseline {
                Some((base_ms, base_report)) => {
                    assert_eq!(
                        base_report, &report,
                        "loss-free sharded runs must agree at any worker count \
                         (n = {n}, workers = {workers})"
                    );
                    base_ms / ms
                }
                None => {
                    baseline = Some((ms, report));
                    1.0
                }
            };
            points.push(ShardPoint {
                n,
                links,
                workers,
                ms,
                reach,
                speedup,
            });
        }
    }

    let mut table = Table::new(
        "Sharded executor sweep: gossip flood on G(n, 2 ln n / n), \
         report-identical at every worker count"
            .to_string(),
        &["n", "links", "workers", "ms/run", "reach", "speedup"],
    );
    for point in &points {
        table.push_row(vec![
            point.n.to_string(),
            point.links.to_string(),
            point.workers.to_string(),
            fmt(point.ms),
            format!("{:.3}", point.reach),
            format!("{:.2}x", point.speedup),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke shape test at tiny sizes (the CI scale smoke runs the
    /// quick preset through the repro binary).
    #[test]
    fn scale_table_has_expected_shape() {
        let mut effort = Effort::quick();
        effort.quick = true;
        let table = run(&effort);
        // 2 sizes × 2 regimes × 2 modes (quick keeps every regime).
        assert_eq!(table.row_count(), 8);
        let text = table.to_aligned();
        assert!(text.contains("converged"));
        assert!(text.contains("delta"));
    }

    /// The sharded sweep covers every (size, worker-count) pair and
    /// self-checks report equality across worker counts internally.
    #[test]
    fn sharded_table_covers_sizes_and_worker_counts() {
        let effort = Effort::quick();
        let table = run_sharded(&effort);
        // 2 quick sizes × 2 quick worker counts.
        assert_eq!(table.row_count(), 4);
        let text = table.to_aligned();
        assert!(text.contains("1200"));
        assert!(text.contains("workers"));
    }

    /// The converged regime's delta rounds must beat the full-view
    /// rounds — the acceptance claim, asserted at smoke scale.
    #[test]
    #[ignore = "release-only: wall-clock comparison is meaningless under debug"]
    fn converged_delta_beats_full_views() {
        let (delta_us, delta_kb) = measure(
            100,
            &converged_params().with_heartbeat_views(ViewMode::Delta),
            300,
            30,
        );
        let (full_us, full_kb) = measure(
            100,
            &converged_params().with_heartbeat_views(ViewMode::Full),
            300,
            30,
        );
        assert!(
            delta_us * 2.0 < full_us,
            "converged delta rounds must be at least 2x faster \
             ({delta_us:.0}µs vs {full_us:.0}µs)"
        );
        assert!(
            delta_kb * 10.0 < full_kb,
            "converged deltas must be at least 10x smaller on the wire \
             ({delta_kb:.2}KB vs {full_kb:.2}KB)"
        );
    }
}

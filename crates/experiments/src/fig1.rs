//! Figure 1: adaptive versus traditional gossip on the two-path example.
//!
//! Pure closed form (`k1/k0 = ½·log_L α + 1`, Appendix A), cross-checked
//! by a Monte-Carlo simulation of the two-path system.

use diffuse_core::analysis;
use rand::Rng;
use rand::SeedableRng;

use crate::table::{fmt, Table};

/// The loss probabilities of the paper's Figure 1 series.
pub const FIG1_LOSSES: [f64; 3] = [1e-2, 1e-3, 1e-4];

/// Regenerates Figure 1: the ratio `k1/k0` as a function of `α ∈ [1, 10]`
/// for each loss probability series.
pub fn run() -> Table {
    let mut table = Table::new(
        "Figure 1 — k1/k0 vs α (adaptive vs traditional gossip, two paths)",
        &["alpha", "L=1e-2", "L=1e-3", "L=1e-4"],
    );
    for alpha10 in (10..=100).step_by(10) {
        let alpha = alpha10 as f64 / 10.0;
        let mut row = vec![fmt(alpha)];
        for l in FIG1_LOSSES {
            row.push(fmt(
                analysis::message_ratio(alpha, l).expect("valid parameters")
            ));
        }
        table.push_row(row);
    }
    table
}

/// Monte-Carlo cross-check of Appendix A's `1 - (√α · L)^{k0}` formula:
/// simulates `runs` two-path transmissions alternating paths and compares
/// the empirical delivery rate with the closed form.
pub fn monte_carlo_check(k0: u32, l: f64, alpha: f64, runs: u32, seed: u64) -> (f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut delivered = 0u32;
    for _ in 0..runs {
        let mut got = false;
        for i in 0..k0 {
            // Typical gossip alternates paths; odd sends use the αL path.
            let loss = if i % 2 == 0 { l } else { alpha * l };
            if !rng.gen_bool(loss.clamp(0.0, 1.0)) {
                got = true;
                break;
            }
        }
        if got {
            delivered += 1;
        }
    }
    let empirical = delivered as f64 / runs as f64;
    let closed_form = analysis::typical_gossip_reach(k0, l, alpha).expect("valid parameters");
    (empirical, closed_form)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_paper_axes() {
        let t = run();
        assert_eq!(t.row_count(), 10);
        let text = t.to_aligned();
        assert!(text.contains("L=1e-4"));
        // α = 1 row: all ratios are 1.
        assert!(t.to_csv().contains("1.00,1.00,1.00,1.00"));
    }

    #[test]
    fn ratio_is_monotone_in_alpha() {
        let t = run();
        let csv = t.to_csv();
        let ratios: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(ratios.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let (empirical, closed) = monte_carlo_check(6, 0.05, 4.0, 60_000, 11);
        assert!(
            (empirical - closed).abs() < 0.01,
            "empirical {empirical} vs closed form {closed}"
        );
    }
}

//! Extension experiment (paper §7 future work): heterogeneous failure
//! probabilities.
//!
//! The paper's evaluation deliberately uses *uniform* probabilities,
//! "counting against" the adaptive algorithm, and conjectures larger
//! gains under heterogeneity. This experiment checks that conjecture on a
//! two-zone LAN/WAN topology: complete clusters with near-perfect links,
//! bridged by a few wide-area links of varying quality.

use diffuse_core::NetworkKnowledge;
use diffuse_graph::generators;
use diffuse_model::{Configuration, LinkId, Probability, ProcessId, Topology};

use crate::fig4::TARGET_RELIABILITY;
use crate::harness::gossip_message_stats_config;
use crate::table::{fmt, Table};
use crate::Effort;

/// Cluster size of the two-zone topology (total 2× this many processes).
pub const CLUSTER_SIZE: u32 = 10;

/// Number of parallel wide-area bridges.
pub const BRIDGES: u32 = 3;

/// Builds the two-zone topology with per-class loss probabilities: LAN
/// links lose `lan_loss`, the first bridge loses `good_wan_loss`, the
/// remaining bridges lose `bad_wan_loss`.
pub fn two_zone_config(
    lan_loss: f64,
    good_wan_loss: f64,
    bad_wan_loss: f64,
) -> (Topology, Configuration) {
    let topology = generators::two_zone(CLUSTER_SIZE, BRIDGES).expect("valid two-zone");
    let mut config = Configuration::uniform(
        &topology,
        Probability::ZERO,
        Probability::new(lan_loss).expect("valid"),
    );
    for b in 0..BRIDGES {
        let link = LinkId::new(ProcessId::new(b), ProcessId::new(CLUSTER_SIZE + b))
            .expect("bridge endpoints differ");
        let loss = if b == 0 { good_wan_loss } else { bad_wan_loss };
        config.set_loss(link, Probability::new(loss).expect("valid"));
    }
    (topology, config)
}

/// One row of the heterogeneity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroPoint {
    /// The bad-bridge loss probability (the heterogeneity knob).
    pub bad_wan_loss: f64,
    /// Optimal (adaptive, converged) messages per broadcast.
    pub optimal_messages: u64,
    /// Mean reference data messages per broadcast.
    pub reference_messages: f64,
    /// reference / optimal.
    pub ratio: f64,
}

/// The fixed gossip step budget used across the whole sweep.
///
/// Held constant so that the sweep varies *only* the environment: per-point
/// Monte-Carlo calibration is a coin flip between adjacent budgets near
/// the threshold, and the resulting ±1-step jumps in flood volume dwarf
/// the heterogeneity signal. Four steps reach every process on the
/// two-zone topology with large margin at every sweep point (the origin
/// sits on the always-good bridge).
pub const GOSSIP_STEP_BUDGET: u32 = 4;

/// Measures the reference/optimal ratio for one bad-bridge loss value.
pub fn measure_point(bad_wan_loss: f64, effort: &Effort) -> HeteroPoint {
    let (topology, config) = two_zone_config(0.001, 0.02, bad_wan_loss);
    let knowledge = NetworkKnowledge::exact(topology.clone(), config.clone());
    let origin = topology.processes().next().expect("non-empty");
    let (_, plan) = knowledge
        .broadcast_plan(origin, TARGET_RELIABILITY)
        .expect("optimizable");
    let optimal_messages = plan.total_messages();

    // The reference gossip ignores reliability differences in its
    // *decisions* (it floods uniformly), but it runs on the real,
    // heterogeneous network: bad bridges eat data copies and ACKs alike,
    // so bridge endpoints keep retrying their unacknowledged partners
    // round after round and the message bill grows as the bridges
    // degrade. (The adaptive side routes around them instead.)
    let seed = effort.seed ^ (bad_wan_loss * 1e4) as u64;
    let (reference_stats, _) = gossip_message_stats_config(
        &topology,
        &config,
        Probability::ZERO,
        GOSSIP_STEP_BUDGET,
        effort.gossip_runs,
        seed ^ 0x77,
    );
    let reference_messages = reference_stats.mean;
    HeteroPoint {
        bad_wan_loss,
        optimal_messages,
        reference_messages,
        ratio: reference_messages / optimal_messages as f64,
    }
}

/// Sweep of bad-bridge loss probabilities.
pub const HETERO_SERIES: [f64; 4] = [0.02, 0.1, 0.3, 0.5];

/// Regenerates the heterogeneity extension table.
pub fn run(effort: &Effort) -> Table {
    let mut table = Table::new(
        "Extension — heterogeneous WAN losses (two-zone LAN/WAN, 20 processes)",
        &["bad bridge L", "optimal msgs", "reference msgs", "ratio"],
    );
    for &bad in &HETERO_SERIES {
        let point = measure_point(bad, effort);
        table.push_row(vec![
            fmt(bad),
            point.optimal_messages.to_string(),
            fmt(point.reference_messages),
            fmt(point.ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_routes_around_bad_bridges() {
        // With one good and two bad bridges, the MRT must cross only the
        // good one; the plan's cost should barely grow as the bad bridges
        // degrade.
        let (topo_a, cfg_a) = two_zone_config(0.001, 0.02, 0.1);
        let (topo_b, cfg_b) = two_zone_config(0.001, 0.02, 0.9);
        let origin = topo_a.processes().next().unwrap();
        let plan_a = NetworkKnowledge::exact(topo_a, cfg_a)
            .broadcast_plan(origin, TARGET_RELIABILITY)
            .unwrap()
            .1;
        let plan_b = NetworkKnowledge::exact(topo_b, cfg_b)
            .broadcast_plan(origin, TARGET_RELIABILITY)
            .unwrap()
            .1;
        assert_eq!(
            plan_a.total_messages(),
            plan_b.total_messages(),
            "bad-bridge quality must not affect the optimal plan"
        );
    }

    #[test]
    fn heterogeneity_increases_the_gain() {
        let effort = Effort {
            gossip_runs: 15,
            ..Effort::quick()
        };
        let mild = measure_point(0.02, &effort);
        let harsh = measure_point(0.5, &effort);
        assert!(
            harsh.ratio > mild.ratio,
            "heterogeneity should widen the gap: {mild:?} vs {harsh:?}"
        );
    }
}
